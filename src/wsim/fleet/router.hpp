#pragma once

#include <cstddef>

#include "wsim/kernels/common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/simt/device.hpp"

namespace wsim::fleet {

/// Analytic per-iteration latency (cycles) of one communication design on
/// one device, read off the device's latency table — the paper's
/// critical-path estimates (Section IV): SW1 spends 6 shared-memory
/// accesses plus one barrier per anti-diagonal, SW2 two shuffles plus four
/// register ops; the PairHMM designs scale the same pattern to the
/// three-matrix recurrence.
double sw_iteration_latency(const simt::DeviceSpec& device,
                            kernels::CommMode mode);
double ph_iteration_latency(const simt::DeviceSpec& device,
                            kernels::PhDesign design);

/// Eq. 7/8 prediction for one (device, kernel design): occupancy computed
/// from the actual compiled kernel's register/shared-memory footprint
/// (Eq. 8), latency from the table above, performance = parallelism x
/// frequency / latency (Eq. 7), reported in GCUPS.
double predicted_sw_gcups(const simt::DeviceSpec& device,
                          kernels::CommMode mode);
double predicted_ph_gcups(const simt::DeviceSpec& device,
                          kernels::PhDesign design);

/// The Table II decision made by the model instead of by measurement:
/// evaluate both communication designs on the device and keep the faster
/// prediction per kernel. This is what lets a heterogeneous fleet run
/// shuffle on Maxwell while an architecture where shared memory wins would
/// get the shared-memory variant — per device, not per fleet.
struct VariantChoice {
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::PhDesign ph_design = kernels::PhDesign::kShuffle;
  double sw_gcups = 0.0;  ///< prediction of the chosen SW design
  double ph_gcups = 0.0;  ///< prediction of the chosen PairHMM design
};

VariantChoice pick_variants(const simt::DeviceSpec& device);

/// Predicted service seconds of a batch of `cells` DP cells at a predicted
/// rate of `gcups`: cells / rate plus the device's fixed launch and PCIe
/// round-trip overheads. Used by model-guided placement to estimate finish
/// times; the reported timings always come from the simulator itself.
double predicted_batch_seconds(const simt::DeviceSpec& device, double gcups,
                               std::size_t cells);

}  // namespace wsim::fleet
