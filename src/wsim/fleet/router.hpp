#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "wsim/kernels/common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/occupancy.hpp"

namespace wsim::fleet {

/// Analytic per-iteration latency (cycles) of one communication design on
/// one device, read off the device's latency table — the paper's
/// critical-path estimates (Section IV): SW1 spends 6 shared-memory
/// accesses plus one barrier per anti-diagonal, SW2 two shuffles plus four
/// register ops; the PairHMM designs scale the same pattern to the
/// three-matrix recurrence.
double sw_iteration_latency(const simt::DeviceSpec& device,
                            kernels::CommMode mode);
double ph_iteration_latency(const simt::DeviceSpec& device,
                            kernels::PhDesign design);

/// Eq. 7/8 prediction for one (device, kernel design): occupancy computed
/// from the actual compiled kernel's register/shared-memory footprint
/// (Eq. 8), latency from the table above, performance = parallelism x
/// frequency / latency (Eq. 7), reported in GCUPS.
double predicted_sw_gcups(const simt::DeviceSpec& device,
                          kernels::CommMode mode);
double predicted_ph_gcups(const simt::DeviceSpec& device,
                          kernels::PhDesign design);

/// The Table II decision made by the model instead of by measurement:
/// evaluate both communication designs on the device and keep the faster
/// prediction per kernel. This is what lets a heterogeneous fleet run
/// shuffle on Maxwell while an architecture where shared memory wins would
/// get the shared-memory variant — per device, not per fleet.
struct VariantChoice {
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::PhDesign ph_design = kernels::PhDesign::kShuffle;
  double sw_gcups = 0.0;  ///< prediction of the chosen SW design
  double ph_gcups = 0.0;  ///< prediction of the chosen PairHMM design
};

VariantChoice pick_variants(const simt::DeviceSpec& device);

/// Predicted service seconds of a batch of `cells` DP cells at a predicted
/// rate of `gcups`: cells / rate plus the device's fixed launch and PCIe
/// round-trip overheads. Used by model-guided placement to estimate finish
/// times; the reported timings always come from the simulator itself.
double predicted_batch_seconds(const simt::DeviceSpec& device, double gcups,
                               std::size_t cells);

// ---------------------------------------------------------------------------
// Intra- vs inter-task regime model (the 2-D router)
// ---------------------------------------------------------------------------

/// How the fleet parallelizes SW batches: task-per-block (inter-task), the
/// wavefront tile subsystem (intra-task), or the model's per-batch choice.
enum class ParallelismPolicy {
  kAuto,       ///< pick_parallelism decides per (length, batch, device)
  kInterTask,  ///< always task-per-block
  kIntraTask,  ///< always wavefront tiles
};

std::string_view to_string(ParallelismPolicy policy) noexcept;

/// {"auto", "inter", "intra"}.
const std::vector<std::string>& parallelism_policy_names();

/// Lookup by CLI name; throws util::CheckError listing the valid names.
ParallelismPolicy parallelism_policy_by_name(std::string_view name);

/// The concrete decision pick_parallelism makes for one batch.
enum class ParallelMode { kInterTask, kIntraTask };

std::string_view to_string(ParallelMode mode) noexcept;

/// Critical-path latency (cycles) of one wavefront anti-diagonal step, read
/// off the device latency table the same way sw_iteration_latency reads the
/// task-per-block designs: the shuffle tile moves four lane-boundary values
/// (H left, H diagonal, E, gap-run length) per step plus register traffic;
/// the shared-memory tile replaces them with line-buffer loads/stores and a
/// barrier; the naive host-sync loop touches every operand in global memory.
double wf_iteration_latency(const simt::DeviceSpec& device,
                            kernels::WfVariant variant);

/// Eq. 7/8 prediction for one wavefront variant: occupancy from the compiled
/// tile (or per-diagonal) kernel's footprint, latency from the table above.
double predicted_wf_gcups(const simt::DeviceSpec& device,
                          kernels::WfVariant variant);

/// Per-device precomputation for the regime decision: the winning design of
/// each subsystem with its occupancy and critical-path latency. Building one
/// compiles four kernels, so the fleet caches it per worker.
struct IntraTaskModel {
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::WfVariant wf_variant = kernels::WfVariant::kShuffle;
  int tile_rows = kernels::kWfTileRows;
  double sw_latency = 0.0;  ///< cycles per anti-diagonal, task-per-block
  double wf_latency = 0.0;  ///< cycles per anti-diagonal, wavefront tile
  simt::Occupancy sw_occupancy;
  simt::Occupancy wf_occupancy;
  int sw_threads_per_block = 32;
  int wf_threads_per_block = 32;
  /// Calibration scales (all 1.0 = the raw analytic model). The cell
  /// scales multiply each regime's compute term; the wave-overhead scale
  /// multiplies the intra-task per-wave launch cost — the term the static
  /// model over-charges at the 512 bp / small-batch corner, where partial
  /// tiles pipeline better than whole-tile derating predicts. The model's
  /// bias is saturation-dependent — an under-filled device (launched
  /// threads below the Eq. 8 occupancy bound) runs far closer to the
  /// analytic prediction than a saturated one — so each decomposition
  /// carries a separate fill-regime scale; the plain cell scales apply
  /// only once the occupancy bound is the binding limit. Set offline by
  /// calibrate_intra_model (fit to a measured regime map) or online by
  /// the fleet's Calibrator factors.
  double inter_cell_scale = 1.0;
  double intra_cell_scale = 1.0;
  double wave_overhead_scale = 1.0;
  double inter_fill_scale = 1.0;
  double intra_fill_scale = 1.0;
};

IntraTaskModel build_intra_task_model(const simt::DeviceSpec& device,
                                      int tile_rows = kernels::kWfTileRows);

/// The two unscaled components of the intra-task prediction, split so the
/// calibration fit can weight them independently: `cell_seconds` is the
/// pipeline-derated compute term, `overhead_seconds` the per-wave launch
/// plus PCIe cost.
struct IntraBatchTerms {
  double cell_seconds = 0.0;
  double overhead_seconds = 0.0;
  /// True when the wave exposes at least the occupancy bound's threads —
  /// the regime where intra_cell_scale (not intra_fill_scale) applies.
  bool saturated = false;
};

IntraBatchTerms intra_batch_terms(const simt::DeviceSpec& device,
                                  const IntraTaskModel& model, std::size_t m,
                                  std::size_t n, std::size_t batch);

/// One measured regime-map point used by calibrate_intra_model.
struct RegimeSample {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t batch = 0;
  double inter_seconds = 0.0;  ///< measured task-per-block batch time
  double intra_seconds = 0.0;  ///< measured best-wavefront batch time
};

/// Fits the model's calibration scales to measured batch times. The
/// samples are split by saturation regime (launched threads vs the Eq. 8
/// occupancy bound) because the analytic model's bias differs sharply
/// between an under-filled and a saturated device: the inter-task scales
/// are per-regime mean measured/predicted ratios of the compute term, and
/// the intra-task scales solve the relative (1/measured^2-weighted)
/// least-squares fit  measured ~ a*cell_sat + a_fill*cell_fill +
/// b*overhead  over all samples (normal equations; scales clamped to a
/// sane positive range). This is the offline counterpart of the fleet's
/// online Calibrator: it closes exactly the regime-map corners where the
/// static pipeline fill/drain and per-wave overhead terms are wrong.
/// Returns `model` with the five scales replaced.
IntraTaskModel calibrate_intra_model(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     const std::vector<RegimeSample>& samples);

/// Predicted seconds for a batch of `batch` M x N tasks under each regime.
///
/// Inter-task: parallelism is the Eq. 8 occupancy bound clamped by the
/// launched threads (batch blocks x 32 threads) — a batch of four long reads
/// can only ever update 128 cells per cycle no matter the device.
///
/// Intra-task: parallelism is the occupancy bound clamped by
/// batch x avg_wave_tiles x 32 (tiles independent within a wave), derated by
/// the tile pipeline fill/drain factor rows / (rows + 31), and the fixed
/// overhead is paid once per *wave* launch rather than once per batch.
double predicted_inter_batch_seconds(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     std::size_t m, std::size_t n,
                                     std::size_t batch);
double predicted_intra_batch_seconds(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     std::size_t m, std::size_t n,
                                     std::size_t batch);

/// The 2-D regime decision (paper Eq. 7/8 applied to both decompositions):
/// short-read / large-batch points keep task-per-block, long-read /
/// small-batch points flip to the wavefront subsystem. Ties keep inter-task
/// (the battle-tested path).
ParallelMode pick_parallelism(const simt::DeviceSpec& device,
                              const IntraTaskModel& model, std::size_t m,
                              std::size_t n, std::size_t batch);

/// Convenience overload that builds the model on the spot (compiles kernels
/// — prefer the cached-model overload in hot paths).
ParallelMode pick_parallelism(const simt::DeviceSpec& device, std::size_t m,
                              std::size_t n, std::size_t batch);

}  // namespace wsim::fleet
