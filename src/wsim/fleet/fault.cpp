#include "wsim/fleet/fault.hpp"

#include <algorithm>

namespace wsim::fleet {

namespace {

/// splitmix64 finalizer: a full-avalanche mix, so consecutive sequence
/// numbers give independent-looking draws.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) from (seed, device, seq, stream). `stream`
/// separates the failure and slowdown decisions of one attempt.
double draw(std::uint64_t seed, int device_index, std::uint64_t dispatch_seq,
            std::uint64_t stream) noexcept {
  std::uint64_t h = mix(seed ^ (FaultPlan::kDomain * (stream + 1)));
  h = mix(h ^ (static_cast<std::uint64_t>(device_index) + 1));
  h = mix(h ^ dispatch_seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(DegradeKind kind) noexcept {
  switch (kind) {
    case DegradeKind::kStuckSlow:
      return "stuck";
    case DegradeKind::kProgressive:
      return "ramp";
    case DegradeKind::kFlapping:
      return "flap";
  }
  return "?";
}

double DegradeSpec::multiplier_at(int device_index,
                                  std::uint64_t seq) const noexcept {
  if (device_index != device || factor <= 1.0 || seq < onset_seq) {
    return 1.0;
  }
  const std::uint64_t since = seq - onset_seq;
  switch (kind) {
    case DegradeKind::kStuckSlow:
      return factor;
    case DegradeKind::kProgressive: {
      if (ramp_batches == 0) {
        return factor;
      }
      const double progress = std::min(
          1.0, static_cast<double>(since + 1) /
                   static_cast<double>(ramp_batches));
      return 1.0 + (factor - 1.0) * progress;
    }
    case DegradeKind::kFlapping: {
      if (period == 0) {
        return factor;
      }
      return (since / period) % 2 == 0 ? factor : 1.0;
    }
  }
  return 1.0;
}

bool FaultPlan::launch_fails(int device_index,
                             std::uint64_t dispatch_seq) const noexcept {
  if (launch_failure_prob <= 0.0) {
    return false;
  }
  return draw(seed, device_index, dispatch_seq, 0) < launch_failure_prob;
}

double FaultPlan::service_multiplier(int device_index,
                                     std::uint64_t dispatch_seq) const noexcept {
  if (slowdown_prob <= 0.0) {
    return 1.0;
  }
  return draw(seed, device_index, dispatch_seq, 1) < slowdown_prob
             ? slowdown_factor
             : 1.0;
}

double FaultPlan::degraded_multiplier(
    int device_index, std::uint64_t dispatch_seq) const noexcept {
  double multiplier = device_index == degraded_device ? degraded_factor : 1.0;
  for (const DegradeSpec& spec : degradations) {
    multiplier *= spec.multiplier_at(device_index, dispatch_seq);
  }
  return multiplier;
}

double RetryPolicy::backoff(int attempt) const noexcept {
  double delay = backoff_initial;
  for (int i = 0; i < attempt; ++i) {
    delay *= backoff_multiplier;
  }
  return delay;
}

}  // namespace wsim::fleet
