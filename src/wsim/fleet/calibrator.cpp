#include "wsim/fleet/calibrator.hpp"

#include <algorithm>
#include <cmath>

#include "wsim/util/check.hpp"

namespace wsim::fleet {

std::string_view to_string(KernelClass cls) noexcept {
  switch (cls) {
    case KernelClass::kSwInter:
      return "sw-inter";
    case KernelClass::kSwIntra:
      return "sw-intra";
    case KernelClass::kPairHmm:
      return "pairhmm";
  }
  return "?";
}

std::string_view to_string(DriftState state) noexcept {
  switch (state) {
    case DriftState::kNominal:
      return "nominal";
    case DriftState::kDriftSuspect:
      return "drift-suspect";
    case DriftState::kDerated:
      return "derated";
  }
  return "?";
}

Calibrator::Calibrator(CalibrationConfig config) : config_(config) {
  util::require(config_.alpha > 0.0 && config_.alpha <= 1.0,
                "Calibrator: alpha must be in (0, 1]");
  util::require(config_.min_samples >= 1,
                "Calibrator: min_samples must be >= 1");
  util::require(config_.window >= 1, "Calibrator: window must be >= 1");
  util::require(config_.cusum_slack >= 0.0,
                "Calibrator: cusum_slack must be >= 0");
  util::require(config_.cusum_threshold > 0.0,
                "Calibrator: cusum_threshold must be > 0");
  util::require(config_.peer_ratio > 1.0, "Calibrator: peer_ratio must be > 1");
  util::require(config_.derate_ratio > 1.0,
                "Calibrator: derate_ratio must be > 1");
  util::require(config_.requalify_band >= 1.0,
                "Calibrator: requalify_band must be >= 1");
  util::require(config_.quarantine_ratio > config_.derate_ratio,
                "Calibrator: quarantine_ratio must exceed derate_ratio");
  util::require(config_.probe_interval >= 1,
                "Calibrator: probe_interval must be >= 1");
  util::require(config_.requalify_after >= 1,
                "Calibrator: requalify_after must be >= 1");
}

void Calibrator::resize(std::size_t devices) {
  std::lock_guard<std::mutex> lock(mu_);
  util::require(devices >= devices_.size(),
                "Calibrator: the device registry only grows");
  devices_.resize(devices);
}

std::size_t Calibrator::devices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.size();
}

double Calibrator::windowed_ratio(const Track& track) const {
  if (track.recent.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  for (const double r : track.recent) {
    sum += r;
  }
  return sum / static_cast<double>(track.recent.size());
}

double Calibrator::factor_locked(const DeviceCal& cal, KernelClass cls) const {
  const Track& track = cal.tracks[static_cast<std::size_t>(cls)];
  return track.warmed() ? track.factor : 1.0;
}

double Calibrator::reference_factor(int device, KernelClass cls) const {
  // The device's own warm-up baseline, scaled by the median *drift*
  // (factor / baseline) of its warmed peers for the class. Raw factors
  // must never be compared across devices: the healthy per-device model
  // biases of a heterogeneous fleet spread wider than the drift being
  // hunted, so a raw-factor median would false-fire on healthy fleets.
  // Peer drifts sit near 1.0 when the fleet is healthy and move together
  // under common-mode shifts (a workload change biasing every device),
  // which is exactly what should not count as one device drifting.
  const Track& own =
      devices_[static_cast<std::size_t>(device)].tracks[static_cast<std::size_t>(cls)];
  if (!own.warmed()) {
    return factor_locked(devices_[static_cast<std::size_t>(device)], cls);
  }
  std::vector<double> drifts;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) == device) {
      continue;
    }
    const Track& track = devices_[i].tracks[static_cast<std::size_t>(cls)];
    if (track.warmed() && track.baseline > 0.0) {
      drifts.push_back(track.factor / track.baseline);
    }
  }
  if (drifts.empty()) {
    return own.baseline;
  }
  std::sort(drifts.begin(), drifts.end());
  const std::size_t mid = drifts.size() / 2;
  const double median = drifts.size() % 2 == 1
                            ? drifts[mid]
                            : 0.5 * (drifts[mid - 1] + drifts[mid]);
  return own.baseline * median;
}

std::vector<DriftTransition> Calibrator::observe(int device, KernelClass cls,
                                                 std::uint64_t seq,
                                                 double predicted_seconds,
                                                 double observed_seconds,
                                                 SimTime t) {
  std::vector<DriftTransition> out;
  if (!config_.enabled) {
    return out;
  }
  util::require(predicted_seconds > 0.0 && observed_seconds > 0.0,
                "Calibrator::observe: seconds must be > 0");
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::observe: unknown device");
  DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
  PendingObs obs;
  obs.cls = cls;
  obs.predicted = predicted_seconds;
  obs.observed = observed_seconds;
  obs.time = t;
  if (seq != cal.next_seq) {
    util::require(seq > cal.next_seq,
                  "Calibrator::observe: dispatch seq applied twice");
    cal.pending.emplace(seq, obs);
    return out;
  }
  apply(device, obs, out);
  ++cal.next_seq;
  // Drain any buffered successors the gap was hiding.
  auto it = cal.pending.begin();
  while (it != cal.pending.end() && it->first == cal.next_seq) {
    if (!it->second.skipped) {
      apply(device, it->second, out);
    }
    ++cal.next_seq;
    it = cal.pending.erase(it);
  }
  return out;
}

std::vector<DriftTransition> Calibrator::skip(int device, std::uint64_t seq) {
  std::vector<DriftTransition> out;
  if (!config_.enabled) {
    return out;
  }
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::skip: unknown device");
  DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
  if (seq != cal.next_seq) {
    util::require(seq > cal.next_seq,
                  "Calibrator::skip: dispatch seq applied twice");
    PendingObs obs;
    obs.skipped = true;
    cal.pending.emplace(seq, obs);
    return out;
  }
  ++cal.next_seq;
  auto it = cal.pending.begin();
  while (it != cal.pending.end() && it->first == cal.next_seq) {
    if (!it->second.skipped) {
      apply(device, it->second, out);
    }
    ++cal.next_seq;
    it = cal.pending.erase(it);
  }
  return out;
}

void Calibrator::apply(int device, const PendingObs& obs,
                       std::vector<DriftTransition>& out) {
  DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
  Track& track = cal.tracks[static_cast<std::size_t>(obs.cls)];
  const double ratio = obs.observed / obs.predicted;
  ++total_applied_;
  cal.last_observed_dispatch = total_applied_;

  // Warm-up: accumulate the mean, apply factor 1.0, no detectors.
  ++track.count;
  if (!track.factor_seeded) {
    track.warmup_sum += ratio;
    if (track.count >= static_cast<std::uint64_t>(config_.min_samples)) {
      track.factor = track.warmup_sum / static_cast<double>(track.count);
      track.baseline = track.factor;
      track.factor_seeded = true;
    }
    return;
  }
  if (config_.freeze_after_warmup) {
    return;  // calibrate-once-at-deploy: the seeded factor is final
  }

  // CUSUM residual against the factor *before* this observation updates
  // it — a step the EWMA has not yet absorbed accumulates fast.
  const double residual = std::log(ratio / track.factor) - config_.cusum_slack;
  track.cusum = std::max(0.0, track.cusum + residual);
  track.factor =
      (1.0 - config_.alpha) * track.factor + config_.alpha * ratio;
  if (track.recent.size() <
      static_cast<std::size_t>(config_.window)) {
    track.recent.push_back(ratio);
  } else {
    track.recent[track.recent_next] = ratio;
    track.recent_next = (track.recent_next + 1) % track.recent.size();
  }

  const double reference = reference_factor(device, obs.cls);
  const double windowed = windowed_ratio(track);
  const double windowed_vs_ref = reference > 0.0 ? windowed / reference : 1.0;

  const auto transition = [&](DriftState to, double drove, int evidence,
                              bool escalate) {
    DriftTransition tr;
    tr.device = device;
    tr.cls = obs.cls;
    tr.from = cal.state;
    tr.to = to;
    tr.ratio = drove;
    tr.window = evidence;
    tr.time = obs.time;
    tr.escalate_quarantine = escalate;
    cal.state = to;
    out.push_back(tr);
  };

  // Silent degradation (a dropped clock, a flaky link) slows every kernel
  // class on the device, but only the suspect class accumulates direct
  // evidence. On derate/requalify, rescale the *other* warmed classes by
  // the same relative drift — otherwise they keep routing at stale factors
  // until their own EWMAs crawl over, and the device soaks up misplaced
  // work the whole time.
  const auto scale_peers_of = [&](KernelClass cls, double drift) {
    for (std::size_t c = 0; c < kKernelClasses; ++c) {
      Track& other = cal.tracks[c];
      if (c == static_cast<std::size_t>(cls) || !other.warmed()) {
        continue;
      }
      other.factor = other.baseline * drift;
      other.cusum = 0.0;
    }
  };

  switch (cal.state) {
    case DriftState::kNominal: {
      const bool cusum_trip = track.cusum >= config_.cusum_threshold;
      const bool peer_trip = track.factor >= config_.peer_ratio * reference;
      if (cusum_trip || peer_trip) {
        cal.suspect_class = static_cast<int>(obs.cls);
        cal.suspect_evidence.clear();
        cal.suspect_evidence.push_back(ratio);
        transition(DriftState::kDriftSuspect, windowed_vs_ref, 1, false);
      }
      break;
    }
    case DriftState::kDriftSuspect: {
      if (static_cast<int>(obs.cls) != cal.suspect_class) {
        break;  // confirmation watches the class whose detector fired
      }
      cal.suspect_evidence.push_back(ratio);
      double evidence = 0.0;
      for (const double r : cal.suspect_evidence) {
        evidence += r;
      }
      evidence /= static_cast<double>(cal.suspect_evidence.size());
      const double evidence_vs_ref =
          reference > 0.0 ? evidence / reference : 1.0;
      if (cal.suspect_evidence.size() >= 2 &&
          evidence_vs_ref >= config_.derate_ratio) {
        // Persistent drift confirmed: snap the factor to the post-onset
        // evidence mean so placement reacts now, not after the EWMA
        // catches up, and propagate the drift to the device's other
        // kernel classes.
        track.factor = evidence;
        track.cusum = 0.0;
        cal.inband_streak = 0;
        if (track.baseline > 0.0) {
          scale_peers_of(obs.cls, evidence / track.baseline);
        }
        transition(DriftState::kDerated, evidence_vs_ref,
                   static_cast<int>(cal.suspect_evidence.size()),
                   evidence_vs_ref >= config_.quarantine_ratio);
      } else if (track.cusum <
                     config_.cusum_threshold * config_.suspect_decay &&
                 track.factor < config_.peer_ratio * reference) {
        // Both detectors quiet again: transient noise, stand down.
        cal.suspect_class = -1;
        cal.suspect_evidence.clear();
        transition(DriftState::kNominal, windowed_vs_ref,
                   static_cast<int>(track.recent.size()), false);
      }
      break;
    }
    case DriftState::kDerated: {
      if (static_cast<int>(obs.cls) != cal.suspect_class) {
        break;
      }
      if (windowed_vs_ref >= config_.quarantine_ratio) {
        // Still derated, but sick enough to hand to the quarantine
        // channel (re-entering kDerated marks the escalation).
        cal.inband_streak = 0;
        transition(DriftState::kDerated, windowed_vs_ref,
                   static_cast<int>(track.recent.size()), true);
        break;
      }
      if (ratio <= config_.requalify_band * reference) {
        ++cal.inband_streak;
        if (cal.inband_streak >= config_.requalify_after) {
          track.factor = windowed;
          track.cusum = 0.0;
          if (track.baseline > 0.0) {
            scale_peers_of(obs.cls, windowed / track.baseline);
          }
          cal.suspect_class = -1;
          cal.suspect_evidence.clear();
          cal.inband_streak = 0;
          transition(DriftState::kNominal, windowed_vs_ref,
                     static_cast<int>(track.recent.size()), false);
        }
      } else {
        cal.inband_streak = 0;
      }
      break;
    }
  }
}

double Calibrator::factor(int device, KernelClass cls) const {
  if (!config_.enabled) {
    return 1.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::factor: unknown device");
  return factor_locked(devices_[static_cast<std::size_t>(device)], cls);
}

double Calibrator::dominant_factor(int device) const {
  if (!config_.enabled) {
    return 1.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::dominant_factor: unknown device");
  const DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
  std::size_t best = 0;
  for (std::size_t c = 1; c < kKernelClasses; ++c) {
    if (cal.tracks[c].count > cal.tracks[best].count) {
      best = c;
    }
  }
  return factor_locked(cal, static_cast<KernelClass>(best));
}

DriftState Calibrator::drift_state(int device) const {
  if (!config_.enabled) {
    return DriftState::kNominal;
  }
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::drift_state: unknown device");
  return devices_[static_cast<std::size_t>(device)].state;
}

bool Calibrator::derated(int device) const {
  return drift_state(device) == DriftState::kDerated;
}

double Calibrator::capacity_scale(const std::vector<int>& serving) const {
  if (!config_.enabled || serving.empty()) {
    return 1.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  std::size_t counted = 0;
  for (const int device : serving) {
    if (device < 0 || static_cast<std::size_t>(device) >= devices_.size()) {
      continue;
    }
    const DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
    std::size_t best = 0;
    for (std::size_t c = 1; c < kKernelClasses; ++c) {
      if (cal.tracks[c].count > cal.tracks[best].count) {
        best = c;
      }
    }
    const double f = factor_locked(cal, static_cast<KernelClass>(best));
    sum += f > 0.0 ? 1.0 / f : 1.0;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 1.0;
}

bool Calibrator::probe_due(int device) const {
  if (!config_.enabled) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (device < 0 || static_cast<std::size_t>(device) >= devices_.size()) {
    return false;
  }
  const DeviceCal& cal = devices_[static_cast<std::size_t>(device)];
  return cal.state == DriftState::kDerated &&
         total_applied_ - cal.last_observed_dispatch >=
             static_cast<std::uint64_t>(config_.probe_interval);
}

std::uint64_t Calibrator::samples(int device, KernelClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  util::require(device >= 0 && static_cast<std::size_t>(device) < devices_.size(),
                "Calibrator::samples: unknown device");
  return devices_[static_cast<std::size_t>(device)]
      .tracks[static_cast<std::size_t>(cls)]
      .count;
}

}  // namespace wsim::fleet
