#include "wsim/fleet/router.hpp"

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/check.hpp"

namespace wsim::fleet {

double sw_iteration_latency(const simt::DeviceSpec& device,
                            kernels::CommMode mode) {
  const auto& lat = device.lat;
  switch (mode) {
    case kernels::CommMode::kSharedMemory:
      // SW1: 4 loads + 2 stores to the rotating line buffers plus the
      // per-diagonal barrier (the paper's 183-cycle K1200 estimate).
      return 4.0 * lat.smem_load + 2.0 * lat.smem_store + lat.sync_barrier;
    case kernels::CommMode::kShuffle:
      // SW2: two shuffles and four register operations (22 cycles on
      // K1200 in the paper's estimate).
      return 2.0 * lat.shfl_up + 4.0 * lat.reg_access;
  }
  throw util::CheckError("sw_iteration_latency: unknown CommMode");
}

double ph_iteration_latency(const simt::DeviceSpec& device,
                            kernels::PhDesign design) {
  const auto& lat = device.lat;
  switch (design) {
    case kernels::PhDesign::kShared:
      // PH1: the M/I/D recurrence reads six neighbour values from and
      // writes three to the nine rotating line buffers, with a barrier
      // per anti-diagonal and two dependent FP stages.
      return 6.0 * lat.smem_load + 3.0 * lat.smem_store + lat.sync_barrier +
             2.0 * lat.falu;
    case kernels::PhDesign::kShuffle:
      // PH2: three boundary shuffles (M/I/D), register traffic, and the
      // same FP recurrence depth.
      return 3.0 * lat.shfl_up + 6.0 * lat.reg_access + 2.0 * lat.falu;
    case kernels::PhDesign::kHybrid:
      // The rejected design pays both a barrier and the shuffles.
      return 3.0 * lat.shfl_up + 2.0 * lat.smem_load + lat.sync_barrier +
             2.0 * lat.falu;
  }
  throw util::CheckError("ph_iteration_latency: unknown PhDesign");
}

double predicted_sw_gcups(const simt::DeviceSpec& device,
                          kernels::CommMode mode) {
  const simt::Kernel kernel = kernels::build_sw_kernel(mode, {});
  const simt::Occupancy occupancy = simt::compute_occupancy(device, kernel);
  return model::predict_gcups(device, occupancy,
                              sw_iteration_latency(device, mode));
}

double predicted_ph_gcups(const simt::DeviceSpec& device,
                          kernels::PhDesign design) {
  // Representative variant: full-length reads (128 rows), i.e. 128
  // threads/block for PH1 and 4 cells/thread for PH2.
  simt::Kernel kernel;
  switch (design) {
    case kernels::PhDesign::kShared:
      kernel = kernels::build_ph_shared_kernel(kernels::kPhMaxReadLen);
      break;
    case kernels::PhDesign::kShuffle:
      kernel = kernels::build_ph_shuffle_kernel(kernels::kPhVariants);
      break;
    case kernels::PhDesign::kHybrid:
      kernel = kernels::build_ph_hybrid_kernel(kernels::kPhMaxReadLen);
      break;
  }
  const simt::Occupancy occupancy = simt::compute_occupancy(device, kernel);
  return model::predict_gcups(device, occupancy,
                              ph_iteration_latency(device, design));
}

VariantChoice pick_variants(const simt::DeviceSpec& device) {
  VariantChoice choice;
  const double sw_shared =
      predicted_sw_gcups(device, kernels::CommMode::kSharedMemory);
  const double sw_shuffle =
      predicted_sw_gcups(device, kernels::CommMode::kShuffle);
  choice.sw_design = sw_shuffle >= sw_shared ? kernels::CommMode::kShuffle
                                             : kernels::CommMode::kSharedMemory;
  choice.sw_gcups = std::max(sw_shared, sw_shuffle);

  const double ph_shared =
      predicted_ph_gcups(device, kernels::PhDesign::kShared);
  const double ph_shuffle =
      predicted_ph_gcups(device, kernels::PhDesign::kShuffle);
  choice.ph_design = ph_shuffle >= ph_shared ? kernels::PhDesign::kShuffle
                                             : kernels::PhDesign::kShared;
  choice.ph_gcups = std::max(ph_shared, ph_shuffle);
  return choice;
}

double predicted_batch_seconds(const simt::DeviceSpec& device, double gcups,
                               std::size_t cells) {
  util::require(gcups > 0.0, "predicted_batch_seconds: gcups must be > 0");
  const double fixed =
      (device.kernel_launch_overhead_us + 2.0 * device.pcie_latency_us) * 1e-6;
  return static_cast<double>(cells) / (gcups * 1e9) + fixed;
}

}  // namespace wsim::fleet
