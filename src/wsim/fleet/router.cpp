#include "wsim/fleet/router.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/check.hpp"

namespace wsim::fleet {

double sw_iteration_latency(const simt::DeviceSpec& device,
                            kernels::CommMode mode) {
  const auto& lat = device.lat;
  switch (mode) {
    case kernels::CommMode::kSharedMemory:
      // SW1: 4 loads + 2 stores to the rotating line buffers plus the
      // per-diagonal barrier (the paper's 183-cycle K1200 estimate).
      return 4.0 * lat.smem_load + 2.0 * lat.smem_store + lat.sync_barrier;
    case kernels::CommMode::kShuffle:
      // SW2: two shuffles and four register operations (22 cycles on
      // K1200 in the paper's estimate).
      return 2.0 * lat.shfl_up + 4.0 * lat.reg_access;
  }
  throw util::CheckError("sw_iteration_latency: unknown CommMode");
}

double ph_iteration_latency(const simt::DeviceSpec& device,
                            kernels::PhDesign design) {
  const auto& lat = device.lat;
  switch (design) {
    case kernels::PhDesign::kShared:
      // PH1: the M/I/D recurrence reads six neighbour values from and
      // writes three to the nine rotating line buffers, with a barrier
      // per anti-diagonal and two dependent FP stages.
      return 6.0 * lat.smem_load + 3.0 * lat.smem_store + lat.sync_barrier +
             2.0 * lat.falu;
    case kernels::PhDesign::kShuffle:
      // PH2: three boundary shuffles (M/I/D), register traffic, and the
      // same FP recurrence depth.
      return 3.0 * lat.shfl_up + 6.0 * lat.reg_access + 2.0 * lat.falu;
    case kernels::PhDesign::kHybrid:
      // The rejected design pays both a barrier and the shuffles.
      return 3.0 * lat.shfl_up + 2.0 * lat.smem_load + lat.sync_barrier +
             2.0 * lat.falu;
  }
  throw util::CheckError("ph_iteration_latency: unknown PhDesign");
}

double predicted_sw_gcups(const simt::DeviceSpec& device,
                          kernels::CommMode mode) {
  const simt::Kernel kernel = kernels::build_sw_kernel(mode, {});
  const simt::Occupancy occupancy = simt::compute_occupancy(device, kernel);
  return model::predict_gcups(device, occupancy,
                              sw_iteration_latency(device, mode));
}

double predicted_ph_gcups(const simt::DeviceSpec& device,
                          kernels::PhDesign design) {
  // Representative variant: full-length reads (128 rows), i.e. 128
  // threads/block for PH1 and 4 cells/thread for PH2.
  simt::Kernel kernel;
  switch (design) {
    case kernels::PhDesign::kShared:
      kernel = kernels::build_ph_shared_kernel(kernels::kPhMaxReadLen);
      break;
    case kernels::PhDesign::kShuffle:
      kernel = kernels::build_ph_shuffle_kernel(kernels::kPhVariants);
      break;
    case kernels::PhDesign::kHybrid:
      kernel = kernels::build_ph_hybrid_kernel(kernels::kPhMaxReadLen);
      break;
  }
  const simt::Occupancy occupancy = simt::compute_occupancy(device, kernel);
  return model::predict_gcups(device, occupancy,
                              ph_iteration_latency(device, design));
}

VariantChoice pick_variants(const simt::DeviceSpec& device) {
  VariantChoice choice;
  const double sw_shared =
      predicted_sw_gcups(device, kernels::CommMode::kSharedMemory);
  const double sw_shuffle =
      predicted_sw_gcups(device, kernels::CommMode::kShuffle);
  choice.sw_design = sw_shuffle >= sw_shared ? kernels::CommMode::kShuffle
                                             : kernels::CommMode::kSharedMemory;
  choice.sw_gcups = std::max(sw_shared, sw_shuffle);

  const double ph_shared =
      predicted_ph_gcups(device, kernels::PhDesign::kShared);
  const double ph_shuffle =
      predicted_ph_gcups(device, kernels::PhDesign::kShuffle);
  choice.ph_design = ph_shuffle >= ph_shared ? kernels::PhDesign::kShuffle
                                             : kernels::PhDesign::kShared;
  choice.ph_gcups = std::max(ph_shared, ph_shuffle);
  return choice;
}

double predicted_batch_seconds(const simt::DeviceSpec& device, double gcups,
                               std::size_t cells) {
  util::require(gcups > 0.0, "predicted_batch_seconds: gcups must be > 0");
  const double fixed =
      (device.kernel_launch_overhead_us + 2.0 * device.pcie_latency_us) * 1e-6;
  return static_cast<double>(cells) / (gcups * 1e9) + fixed;
}

// ---------------------------------------------------------------------------
// Intra- vs inter-task regime model
// ---------------------------------------------------------------------------

std::string_view to_string(ParallelismPolicy policy) noexcept {
  switch (policy) {
    case ParallelismPolicy::kAuto:
      return "auto";
    case ParallelismPolicy::kInterTask:
      return "inter";
    case ParallelismPolicy::kIntraTask:
      return "intra";
  }
  return "?";
}

const std::vector<std::string>& parallelism_policy_names() {
  static const std::vector<std::string> names = {"auto", "inter", "intra"};
  return names;
}

ParallelismPolicy parallelism_policy_by_name(std::string_view name) {
  if (name == "auto") {
    return ParallelismPolicy::kAuto;
  }
  if (name == "inter") {
    return ParallelismPolicy::kInterTask;
  }
  if (name == "intra") {
    return ParallelismPolicy::kIntraTask;
  }
  std::string valid;
  for (const std::string& n : parallelism_policy_names()) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += n;
  }
  throw util::CheckError("unknown parallelism policy '" + std::string(name) +
                         "' (valid policies: " + valid + ")");
}

std::string_view to_string(ParallelMode mode) noexcept {
  return mode == ParallelMode::kIntraTask ? "intra" : "inter";
}

double wf_iteration_latency(const simt::DeviceSpec& device,
                            kernels::WfVariant variant) {
  const auto& lat = device.lat;
  switch (variant) {
    case kernels::WfVariant::kShuffle:
      // Four shfl_up hops per step (H left, H diagonal, E, gap-run length)
      // plus the register rotation — twice the boundary traffic of the
      // task-per-block SW2 design, because a tile imports the full left
      // *and* diagonal state instead of keeping it lane-local.
      return 4.0 * lat.shfl_up + 4.0 * lat.reg_access;
    case kernels::WfVariant::kSharedMemory:
      // Four line-buffer loads, three stores, and the per-step barrier.
      return 4.0 * lat.smem_load + 3.0 * lat.smem_store + lat.sync_barrier;
    case kernels::WfVariant::kHostSyncNaive:
      // Every H/E/F neighbour read and every state write round-trips
      // global memory (best case: warm 128 B segments). The per-diagonal
      // relaunch cost is charged separately, per launch, by
      // predicted_intra_batch_seconds — this is only the in-kernel path.
      return 7.0 * lat.gmem_load_cached + 6.0 * lat.gmem_store;
  }
  throw util::CheckError("wf_iteration_latency: unknown WfVariant");
}

double predicted_wf_gcups(const simt::DeviceSpec& device,
                          kernels::WfVariant variant) {
  const simt::Kernel kernel =
      variant == kernels::WfVariant::kHostSyncNaive
          ? kernels::build_wf_naive_sw_kernel({})
          : kernels::build_wf_sw_kernel(variant, {});
  const simt::Occupancy occupancy = simt::compute_occupancy(device, kernel);
  return model::predict_gcups(device, occupancy,
                              wf_iteration_latency(device, variant));
}

IntraTaskModel build_intra_task_model(const simt::DeviceSpec& device,
                                      int tile_rows) {
  util::require(tile_rows >= 1, "build_intra_task_model: tile_rows must be >= 1");
  IntraTaskModel model;
  model.tile_rows = tile_rows;

  const VariantChoice inter = pick_variants(device);
  model.sw_design = inter.sw_design;
  model.sw_latency = sw_iteration_latency(device, inter.sw_design);
  const simt::Kernel sw_kernel = kernels::build_sw_kernel(inter.sw_design, {});
  model.sw_occupancy = simt::compute_occupancy(device, sw_kernel);
  model.sw_threads_per_block = sw_kernel.threads_per_block;

  // The naive variant is never a candidate: it exists to be beaten.
  const double wf_shuffle =
      predicted_wf_gcups(device, kernels::WfVariant::kShuffle);
  const double wf_shared =
      predicted_wf_gcups(device, kernels::WfVariant::kSharedMemory);
  model.wf_variant = wf_shuffle >= wf_shared ? kernels::WfVariant::kShuffle
                                             : kernels::WfVariant::kSharedMemory;
  model.wf_latency = wf_iteration_latency(device, model.wf_variant);
  const simt::Kernel wf_kernel =
      kernels::build_wf_sw_kernel(model.wf_variant, {});
  model.wf_occupancy = simt::compute_occupancy(device, wf_kernel);
  model.wf_threads_per_block = wf_kernel.threads_per_block;
  return model;
}

namespace {

double fixed_overhead_seconds(const simt::DeviceSpec& device,
                              std::size_t launches) {
  return (static_cast<double>(launches) * device.kernel_launch_overhead_us +
          2.0 * device.pcie_latency_us) *
         1e-6;
}

}  // namespace

double predicted_inter_batch_seconds(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     std::size_t m, std::size_t n,
                                     std::size_t batch) {
  util::require(m >= 1 && n >= 1 && batch >= 1,
                "predicted_inter_batch_seconds: need m, n, batch >= 1");
  // Eq. 8 occupancy bound clamped by what the batch actually launches: one
  // block per task, so a 4-task batch of long reads exposes 128 threads no
  // matter how many SMs the device has.
  const auto parallelism =
      static_cast<double>(model::effective_parallelism(
          device, model.sw_occupancy, batch, model.sw_threads_per_block));
  const double cups =
      parallelism * device.clock_ghz * 1e9 / model.sw_latency;
  const double cells =
      static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(batch);
  const bool saturated =
      parallelism >=
      static_cast<double>(model.sw_occupancy.parallelism(device));
  const double scale =
      saturated ? model.inter_cell_scale : model.inter_fill_scale;
  return scale * (cells / cups) + fixed_overhead_seconds(device, 1);
}

IntraBatchTerms intra_batch_terms(const simt::DeviceSpec& device,
                                  const IntraTaskModel& model, std::size_t m,
                                  std::size_t n, std::size_t batch) {
  util::require(m >= 1 && n >= 1 && batch >= 1,
                "intra_batch_terms: need m, n, batch >= 1");
  const kernels::WfGeometry geom = kernels::wf_geometry(m, n, model.tile_rows);
  // Wave-level block parallelism: every task contributes its independent
  // tiles of the current wave, 32 lanes each.
  const double wave_threads = static_cast<double>(batch) *
                              geom.avg_wave_tiles() * 32.0;
  const double occupancy_bound =
      static_cast<double>(model.wf_occupancy.parallelism(device));
  const double parallelism = std::min(occupancy_bound, wave_threads);
  // Pipeline fill/drain derating: a tile of `rows` rows runs rows + 31
  // steps, so only rows / (rows + 31) of lane-steps update cells.
  const double rows = static_cast<double>(
      std::min<std::size_t>(static_cast<std::size_t>(model.tile_rows), m));
  const double pipeline_eff = rows / (rows + 31.0);
  const double cups =
      parallelism * pipeline_eff * device.clock_ghz * 1e9 / model.wf_latency;
  const double cells =
      static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(batch);
  // One launch per wave: the host-side cost that keeps intra-task out of
  // the short-read regime even where its parallelism looks competitive.
  return {cells / cups, fixed_overhead_seconds(device, geom.waves),
          wave_threads >= occupancy_bound};
}

double predicted_intra_batch_seconds(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     std::size_t m, std::size_t n,
                                     std::size_t batch) {
  const IntraBatchTerms terms = intra_batch_terms(device, model, m, n, batch);
  const double cell_scale =
      terms.saturated ? model.intra_cell_scale : model.intra_fill_scale;
  return cell_scale * terms.cell_seconds +
         model.wave_overhead_scale * terms.overhead_seconds;
}

IntraTaskModel calibrate_intra_model(const simt::DeviceSpec& device,
                                     const IntraTaskModel& model,
                                     const std::vector<RegimeSample>& samples) {
  util::require(!samples.empty(), "calibrate_intra_model: need samples");
  IntraTaskModel fitted = model;
  fitted.inter_cell_scale = 1.0;
  fitted.intra_cell_scale = 1.0;
  fitted.wave_overhead_scale = 1.0;
  fitted.inter_fill_scale = 1.0;
  fitted.intra_fill_scale = 1.0;

  // Inter-task: one scale on the compute term per saturation regime, fit
  // as the mean ratio of (measured - overhead) to the predicted cell
  // seconds. A saturated device shows a several-fold larger compute bias
  // than an under-filled one, so pooling the regimes would split the
  // difference and mis-route both corners of the map.
  const double inter_bound =
      static_cast<double>(model.sw_occupancy.parallelism(device));
  double inter_ratio_sum[2] = {0.0, 0.0};
  std::size_t inter_count[2] = {0, 0};
  for (const RegimeSample& s : samples) {
    if (s.inter_seconds <= 0.0) {
      continue;
    }
    const double predicted =
        predicted_inter_batch_seconds(device, fitted, s.m, s.n, s.batch);
    const double overhead = fixed_overhead_seconds(device, 1);
    const double cell_pred = predicted - overhead;
    const double cell_meas = s.inter_seconds - overhead;
    if (cell_pred > 0.0 && cell_meas > 0.0) {
      const double launched = static_cast<double>(s.batch) *
                              static_cast<double>(model.sw_threads_per_block);
      const std::size_t regime = launched >= inter_bound ? 0 : 1;
      inter_ratio_sum[regime] += cell_meas / cell_pred;
      ++inter_count[regime];
    }
  }
  const auto inter_mean = [&](std::size_t regime, double fallback) {
    return inter_count[regime] > 0
               ? inter_ratio_sum[regime] /
                     static_cast<double>(inter_count[regime])
               : fallback;
  };
  // A regime with no samples inherits the other's scale.
  fitted.inter_cell_scale = inter_mean(0, inter_mean(1, 1.0));
  fitted.inter_fill_scale = inter_mean(1, fitted.inter_cell_scale);

  // Intra-task: least squares with three regressors — the cell term split
  // by saturation regime plus the shared per-wave overhead term:
  //   measured ~ a*cell_saturated + a_fill*cell_fill + b*overhead.
  // This is where the static model errs twice over: the per-wave overhead
  // it charges is too coarse, and the compute bias of a saturated device
  // is ~5x that of an under-filled one (partial waves pipeline far better
  // than the whole-device derating assumes). Each sample is weighted by
  // 1/measured^2 — relative error — so the microsecond small-batch corner
  // counts as much as the hundreds-of-milliseconds large-batch one; an
  // unweighted or pooled fit is dominated by the big saturated points and
  // routes the 512 bp / batch-1 corner wrong.
  double gram[3][3] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  double rhs[3] = {0.0, 0.0, 0.0};
  double suu = 0.0, suv = 0.0, svv = 0.0, suy = 0.0, svy = 0.0;
  std::size_t intra_count = 0;
  for (const RegimeSample& s : samples) {
    if (s.intra_seconds <= 0.0) {
      continue;
    }
    const IntraBatchTerms terms =
        intra_batch_terms(device, fitted, s.m, s.n, s.batch);
    const double u = terms.cell_seconds / s.intra_seconds;
    const double v = terms.overhead_seconds / s.intra_seconds;
    const double r[3] = {terms.saturated ? u : 0.0,
                         terms.saturated ? 0.0 : u, v};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        gram[i][j] += r[i] * r[j];
      }
      rhs[i] += r[i];
    }
    // Pooled 2-parameter accumulators, the fallback when one regime has
    // no samples and the 3-parameter system is singular.
    suu += u * u;
    suv += u * v;
    svv += v * v;
    suy += u;
    svy += v;
    ++intra_count;
  }
  // Clamp to a sane positive range: a fit driven by a degenerate sample
  // set must not turn a cost term negative. The upper bound leaves room
  // for the ~20x compute biases these devices really show.
  const auto clamp_scale = [](double x) { return std::clamp(x, 0.02, 50.0); };
  const double det3 =
      gram[0][0] * (gram[1][1] * gram[2][2] - gram[1][2] * gram[1][2]) -
      gram[0][1] * (gram[0][1] * gram[2][2] - gram[1][2] * gram[0][2]) +
      gram[0][2] * (gram[0][1] * gram[1][2] - gram[1][1] * gram[0][2]);
  if (intra_count >= 3 && std::abs(det3) > 1e-30) {
    const auto cramer = [&](int col) {
      double a[3][3];
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          a[i][j] = j == col ? rhs[i] : gram[i][j];
        }
      }
      return (a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
              a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
              a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0])) /
             det3;
    };
    fitted.intra_cell_scale = clamp_scale(cramer(0));
    fitted.intra_fill_scale = clamp_scale(cramer(1));
    fitted.wave_overhead_scale = clamp_scale(cramer(2));
  } else if (intra_count >= 2) {
    const double det = suu * svv - suv * suv;
    if (std::abs(det) > 1e-30) {
      const double a = (suy * svv - svy * suv) / det;
      const double b = (svy * suu - suy * suv) / det;
      fitted.intra_cell_scale = clamp_scale(a);
      fitted.wave_overhead_scale = clamp_scale(b);
      fitted.intra_fill_scale = fitted.intra_cell_scale;
    }
  } else if (intra_count == 1) {
    for (const RegimeSample& s : samples) {
      if (s.intra_seconds > 0.0) {
        const double predicted =
            predicted_intra_batch_seconds(device, fitted, s.m, s.n, s.batch);
        const double scale = s.intra_seconds / predicted;
        fitted.intra_cell_scale = std::clamp(scale, 0.05, 20.0);
        fitted.wave_overhead_scale = fitted.intra_cell_scale;
        fitted.intra_fill_scale = fitted.intra_cell_scale;
        break;
      }
    }
  }
  return fitted;
}

ParallelMode pick_parallelism(const simt::DeviceSpec& device,
                              const IntraTaskModel& model, std::size_t m,
                              std::size_t n, std::size_t batch) {
  const double inter = predicted_inter_batch_seconds(device, model, m, n, batch);
  const double intra = predicted_intra_batch_seconds(device, model, m, n, batch);
  return intra < inter ? ParallelMode::kIntraTask : ParallelMode::kInterTask;
}

ParallelMode pick_parallelism(const simt::DeviceSpec& device, std::size_t m,
                              std::size_t n, std::size_t batch) {
  return pick_parallelism(device, build_intra_task_model(device), m, n, batch);
}

}  // namespace wsim::fleet
