#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsim::fleet {

/// Simulated time in seconds — the same explicit-clock convention the
/// serving layer uses (serve::SimTime): faults, backoffs, and quarantines
/// move simulated time, never wall-clock time.
using SimTime = double;

/// How a silently degraded device's service-time inflation evolves over
/// its dispatch sequence. All three families are deterministic functions
/// of the per-device dispatch sequence number (not of simulated time), so
/// a replay with the same dispatch order reproduces the same degradation
/// curve — the property every drift-detection test leans on.
enum class DegradeKind {
  /// Full `factor` from `onset_seq` onward: the half-clocked card.
  kStuckSlow,
  /// Linear ramp from 1.0 at `onset_seq` to `factor` over `ramp_batches`
  /// dispatches: creeping thermal throttling. Slow enough that a step
  /// detector (CUSUM) never sees a jump — only a cross-device peer check
  /// catches it.
  kProgressive,
  /// Alternates `period` degraded dispatches with `period` healthy ones
  /// from `onset_seq`: the noisy-neighbour / oscillating-fan scenario that
  /// exercises derate-then-probe-then-requalify rather than quarantine.
  kFlapping,
};

const char* to_string(DegradeKind kind) noexcept;

/// One silent-degradation injection: the named device's service seconds
/// are stretched by the kind-specific multiplier without touching any
/// fault counter — nothing for the health channel to see.
struct DegradeSpec {
  int device = -1;
  DegradeKind kind = DegradeKind::kStuckSlow;
  double factor = 2.0;
  std::uint64_t onset_seq = 0;      ///< first affected dispatch on the device
  std::uint64_t ramp_batches = 64;  ///< kProgressive: dispatches to full factor
  std::uint64_t period = 32;        ///< kFlapping: half-period in dispatches

  /// The multiplier this spec contributes at dispatch `seq` (1.0 when it
  /// names another device or has not set in yet).
  double multiplier_at(int device_index, std::uint64_t seq) const noexcept;
};

/// Deterministic, seeded fault injection for the fleet. Every decision is
/// a pure function of (seed, device index, per-device dispatch sequence
/// number), so a replay with the same plan and the same dispatch order
/// sees exactly the same faults — independent of wall-clock threading and
/// of how long each batch takes. Faults perturb *time* only: a transient
/// launch failure costs a retry (and possibly a different device), a
/// slowdown stretches the batch's service seconds; the computed results
/// are the values the kernel produces either way.
struct FaultPlan {
  /// Domain tag separating FaultPlan draws from simt::SdcPlan draws: the
  /// two plans hash their shared seed under distinct constants, so seeding
  /// both with the same value yields uncorrelated fault and corruption
  /// streams (pinned by guard_test).
  static constexpr std::uint64_t kDomain = 0x51ed270b0a1ce7f9ULL;

  std::uint64_t seed = 0;
  /// Probability that one dispatch attempt fails transiently (the launch
  /// never starts; the batch is retried with backoff, preferably on
  /// another device).
  double launch_failure_prob = 0.0;
  /// Probability that a successfully launched batch runs on a degraded
  /// device (thermal throttling, a noisy neighbour) and takes
  /// `slowdown_factor` times its normal service time.
  double slowdown_prob = 0.0;
  double slowdown_factor = 4.0;

  /// Silent degradation: the named device runs *every* batch at
  /// `degraded_factor` times its normal service seconds without reporting
  /// any fault — no launch failure, no slowdown counter, nothing for the
  /// health channel to see. This is the thermal-throttled / half-clocked
  /// card scenario: static model-guided routing keeps trusting the Eq. 7/8
  /// prediction and keeps overloading the sick device. -1 disables.
  int degraded_device = -1;
  double degraded_factor = 2.0;

  /// Generalized silent degradation: every spec contributes its
  /// kind-specific multiplier (stuck-slow step, progressive ramp,
  /// flapping square wave), combined multiplicatively with each other and
  /// with the legacy degraded_device field above.
  std::vector<DegradeSpec> degradations;

  bool enabled() const noexcept {
    return launch_failure_prob > 0.0 || slowdown_prob > 0.0 ||
           degraded_device >= 0 || !degradations.empty();
  }

  /// True when dispatch attempt `dispatch_seq` on `device_index` fails.
  bool launch_fails(int device_index, std::uint64_t dispatch_seq) const noexcept;

  /// Service-time multiplier for the attempt: 1.0, or `slowdown_factor`
  /// when the slowdown fault fires.
  double service_multiplier(int device_index,
                            std::uint64_t dispatch_seq) const noexcept;

  /// Persistent silent-degradation multiplier for dispatch `dispatch_seq`
  /// on the device: 1.0 for healthy devices; the legacy degraded_device
  /// step and every matching DegradeSpec otherwise, combined
  /// multiplicatively. Applied on top of `service_multiplier`, invisible
  /// to every counter.
  double degraded_multiplier(int device_index,
                             std::uint64_t dispatch_seq) const noexcept;
};

/// Retry-with-backoff policy for transient launch failures. Attempt k
/// (0-based) that fails pays backoff_initial * backoff_multiplier^k of
/// simulated time before the next attempt, which prefers a different
/// healthy device (requeue-on-another-device). A batch that fails
/// `max_attempts` times is a hard error (util::CheckError) — with
/// independent per-attempt failures the probability is
/// launch_failure_prob^max_attempts.
struct RetryPolicy {
  int max_attempts = 4;
  double backoff_initial = 50e-6;
  double backoff_multiplier = 2.0;
  /// Consecutive launch failures on one device before it is quarantined.
  int unhealthy_after = 3;
  /// How long a quarantined device is skipped by placement.
  double quarantine_seconds = 5e-3;

  /// Backoff paid after the (0-based) `attempt`-th failed attempt.
  double backoff(int attempt) const noexcept;
};

/// Per-device health record maintained by the executor: lifetime failure
/// count, the consecutive-failure streak that triggers quarantine, and the
/// quarantine expiry. Placement skips unhealthy devices while any healthy
/// one exists.
struct DeviceHealth {
  std::size_t launch_failures = 0;
  std::size_t consecutive_failures = 0;
  /// Consecutive output-collecting batches on this device flagged by the
  /// guard's verification; cleared when one verifies clean. A device that
  /// silently corrupts gets quarantined like one that fail-stops.
  std::size_t consecutive_sdc = 0;
  SimTime unhealthy_until = 0.0;

  bool healthy_at(SimTime t) const noexcept { return t >= unhealthy_until; }
};

}  // namespace wsim::fleet
