#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wsim/fleet/calibrator.hpp"
#include "wsim/fleet/fault.hpp"
#include "wsim/fleet/router.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::simt {
class ExecutionEngine;
}  // namespace wsim::simt

namespace wsim::fleet {

/// Stable identity of a fleet member. Ids are assigned densely in join
/// order and are never reused: a retired worker keeps its id (and its
/// lifetime counters) forever, so stats rows and placement decisions can
/// be correlated across membership churn.
using DeviceId = std::uint32_t;

/// Lifecycle of one fleet member. The state is *derived* at a given
/// simulated time from the worker's membership flags, its warmup deadline,
/// and its health record — quarantine is a lifecycle state like any other,
/// not a side-channel flag.
///
///   kJoining ──(warmup elapses)──► kActive ◄──(quarantine expires)──┐
///                                   │  │                            │
///                                   │  └──(health trips)──► kQuarantined
///                                   ▼                               │
///                               kDraining ◄─────────────────────────┘
///                                   │          (drain() in any state)
///                                   ▼
///                                kRetired      (retire(); terminal)
enum class WorkerState {
  kJoining,      ///< joined but still warming up; no fresh placements
  kActive,       ///< serving: eligible for every placement round
  kQuarantined,  ///< health-tripped; skipped while alternatives exist
  kDraining,     ///< finishes queued batches, receives no new placements
  kRetired,      ///< terminal: never placed again, counters frozen
};

std::string_view to_string(WorkerState state) noexcept;

/// How the executor picks the device for a formed batch.
enum class PlacementPolicy {
  /// Cycle over eligible devices regardless of speed or load — the
  /// baseline every other policy is benchmarked against.
  kRoundRobin,
  /// Pick the device with the fewest DP cells still outstanding (queued
  /// or executing) — load-aware but speed-blind, SaLoBa's workload-balance
  /// idea lifted to the fleet level.
  kLeastOutstandingCells,
  /// Pick the device with the earliest predicted finish time: the known
  /// device-free time plus the Eq. 7/8 predicted service seconds of this
  /// batch on that device's chosen kernel variant. Speed- and load-aware;
  /// on a heterogeneous fleet this is what routes proportionally more
  /// work to a Titan X than to a K1200.
  kModelGuided,
  /// Like kModelGuided, but *production-realistic*: the finish estimate is
  /// built entirely from the model — each device's backlog is the sum of
  /// its still-predicted-outstanding batch times, not the simulator's
  /// oracle free_at — and both the backlog and this batch's prediction are
  /// multiplied by the Calibrator's per-(device, kernel-class) correction
  /// factor. With calibration off this reproduces the silent-degradation
  /// disaster honestly (a half-speed device keeps receiving its spec-rate
  /// share to the end); with calibration on the learned factors steer work
  /// away at the device's true speed. Derated devices are still probed.
  kCalibrated,
};

std::string_view to_string(PlacementPolicy policy) noexcept;

/// Lookup by CLI name: "rr" | "least-cells" | "model" | "calibrated".
/// Throws util::CheckError listing the valid names on anything else.
PlacementPolicy placement_policy_by_name(std::string_view name);

/// One simulated device in the fleet. Kernel designs may be pinned
/// explicitly; by default each is chosen by the performance model for
/// this device's architecture (router::pick_variants — the Table II
/// decision, made per device).
struct WorkerConfig {
  simt::DeviceSpec device;
  std::optional<kernels::CommMode> sw_design;
  std::optional<kernels::PhDesign> ph_design;
  /// Pinned wavefront (intra-task) variant; by default the model picks the
  /// faster of wf-shuffle / wf-shared for this device. Only consulted when
  /// a batch is routed intra-task.
  std::optional<kernels::WfVariant> wf_variant;
  /// Bound on batches waiting behind the executing one. A device whose
  /// queue is full is skipped by placement while any other device has
  /// room; when every queue is full the dispatch stalls until the
  /// earliest slot frees (the fleet never drops admitted work — admission
  /// backpressure lives in the serving layer).
  std::size_t max_pending_batches = 8;
  /// Per-device watchdog budget overriding GuardConfig::max_block_cycles
  /// when positive (a slow K1200 may deserve a bigger budget than a
  /// Titan X).
  long long max_block_cycles = 0;
};

struct FleetConfig {
  std::vector<WorkerConfig> workers;
  PlacementPolicy policy = PlacementPolicy::kModelGuided;
  /// Inter- vs intra-task routing of SW batches: kAuto asks
  /// pick_parallelism per (mean length, batch size, device) — the 2-D
  /// regime decision — while kInterTask / kIntraTask pin the subsystem.
  /// PairHMM batches always run inter-task (reads are < 128 bp).
  ParallelismPolicy parallelism = ParallelismPolicy::kAuto;
  FaultPlan faults;
  RetryPolicy retry;
  /// SDC injection, detection mode, watchdog budget, and escalation knobs
  /// (see guard::GuardConfig). Injection and verification apply to
  /// output-collecting dispatches only; timing-only dispatches reuse
  /// cached per-shape costs and must stay clean.
  guard::GuardConfig guard;
  /// Engine executing every worker's launches; null means the
  /// process-wide simt::shared_engine(). Workers share the pool — a
  /// DeviceWorker is a simulated-device timeline, not an OS thread.
  simt::ExecutionEngine* engine = nullptr;
  /// Simulated seconds a worker joined via join() spends in kJoining
  /// before it becomes placeable (driver load, clock ramp, cache warm).
  /// The initial fleet from `workers` is active at t=0 regardless.
  double join_warmup_seconds = 0.0;
  /// Online model calibration + drift detection (see calibrator.hpp).
  /// kCalibrated placement consults the factors whenever enabled; the
  /// other policies still run the detectors, so drift surfaces in the
  /// stats and the health channel regardless of routing.
  CalibrationConfig calibration;
};

/// Execution knobs of one dispatch, mirroring the single-device runners.
struct ExecOptions {
  bool collect_outputs = true;
  bool overlap_transfers = false;
  bool double_fallback = true;  ///< PairHMM underflow rescue (outputs only)
};

/// Lifetime counters of one device, snapshot by stats().
struct DeviceStats {
  std::string name;
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::PhDesign ph_design = kernels::PhDesign::kShuffle;
  kernels::WfVariant wf_variant = kernels::WfVariant::kShuffle;
  std::size_t batches = 0;
  std::size_t intra_batches = 0;  ///< SW batches routed to the wavefront path
  std::size_t tasks = 0;
  std::size_t cells = 0;
  double busy_seconds = 0.0;
  std::size_t launch_failures = 0;  ///< injected transient failures seen
  std::size_t slowdowns = 0;        ///< batches run under a slowdown fault
  std::size_t sdc_detected = 0;     ///< verifications that flagged this device
  std::size_t timeouts = 0;         ///< watchdog LaunchTimeout errors here
  SimTime free_at = 0.0;            ///< device-timeline end
  DeviceId id = 0;                  ///< stable registry id
  WorkerState state = WorkerState::kActive;  ///< lifecycle at snapshot time
  std::size_t quarantines = 0;      ///< times this device entered quarantine
  SimTime joined_at = 0.0;          ///< when the worker joined the fleet
  /// Calibration/drift snapshot (defaults when calibration is disabled):
  /// the dominant-class correction factor, the drift-state machine's
  /// position, and the recovery-ladder counters.
  double calibration_factor = 1.0;
  DriftState drift_state = DriftState::kNominal;
  bool derated = false;
  std::size_t drift_suspects = 0;      ///< kNominal -> kDriftSuspect raises
  std::size_t derates = 0;             ///< confirmed derate transitions
  std::size_t probes = 0;              ///< forced placements while derated
  std::size_t requalifications = 0;    ///< derated -> nominal recoveries
};

/// Fleet-wide snapshot: per-device counters plus dispatch/retry and
/// membership accounting. `busy_skew` is the imbalance measure the
/// benches record.
struct FleetStats {
  std::vector<DeviceStats> devices;
  std::size_t dispatches = 0;  ///< successful batch executions
  std::size_t retries = 0;     ///< failed attempts that were retried
  std::size_t requeues = 0;    ///< retries that landed on a different device
  std::size_t joins = 0;       ///< dynamic join() calls (initial fleet excluded)
  std::size_t drains = 0;      ///< drain() calls
  std::size_t retires = 0;     ///< retire() calls
  guard::GuardStats guard;     ///< corruption/watchdog/verification accounting

  std::size_t total_cells() const noexcept;
  double total_busy_seconds() const noexcept;
  /// (max - min) / mean of per-device busy seconds; 0 for an idle or
  /// single-device fleet. Round-robin on a heterogeneous fleet leaves the
  /// slow devices busy long after the fast ones drained — a large skew.
  double busy_skew() const noexcept;
  /// Per-device busy fraction of `duration` seconds.
  double utilization(std::size_t device_index, double duration) const;
};

/// Where and when one batch actually ran.
struct Execution {
  SimTime start_time = 0.0;       ///< batch reached its device
  SimTime completion_time = 0.0;  ///< kernel + transfers done
  double service_seconds = 0.0;   ///< simulated seconds, incl. slowdown
  int device_index = 0;           ///< worker that executed it
  int attempts = 1;               ///< 1 = no retries
  int reexecutions = 0;           ///< extra runs for verification/recovery
  bool cpu_fallback = false;      ///< outputs replaced by the CPU reference
};

struct SwExecution {
  Execution exec;
  kernels::SwBatchResult result;
};

struct PhExecution {
  Execution exec;
  kernels::PhBatchResult result;
};

/// Heterogeneous multi-device executor: owns an id-keyed registry of
/// DeviceWorkers (one simulated GPU each, with its own bounded batch queue
/// and device timeline, all sharing one simt::ExecutionEngine worker pool)
/// and dispatches formed batches by the configured placement policy, with
/// deterministic fault injection, per-device health tracking,
/// retry-with-backoff, and requeue-on-another-device.
///
/// Membership is dynamic: join() adds a worker mid-run (placeable after
/// its warmup), drain() stops new placements while queued batches finish,
/// retire() removes the worker from every placement round permanently.
/// Ids are stable — the registry only grows, so DeviceId == registry
/// index forever and references held across join() stay valid.
///
/// Time model: like serve::AlignmentService, the executor lives in
/// simulated time. `execute_sw`/`execute_ph` resolve a dispatch
/// immediately — placement, retries, and the device timeline are pure
/// simulated-time bookkeeping — and report when the batch starts and
/// completes; the caller's clock decides when the results become visible.
///
/// Guarantee: results are bit-identical to running the same batch through
/// a single-device runner — placement, retries, slowdowns, and membership
/// churn move time, not values (both communication designs compute
/// identical outputs, and DeviceSpec latencies affect timing only).
///
/// Thread safety: none — the executor mutates device timelines per call.
/// The serving layer serializes access under its own lock.
class FleetExecutor {
 public:
  explicit FleetExecutor(FleetConfig config);

  FleetExecutor(const FleetExecutor&) = delete;
  FleetExecutor& operator=(const FleetExecutor&) = delete;

  const FleetConfig& config() const noexcept { return config_; }
  /// Registry size: every worker that ever joined, retired ones included.
  std::size_t size() const noexcept { return workers_.size(); }

  const simt::DeviceSpec& device(std::size_t index) const;
  kernels::CommMode sw_design(std::size_t index) const;
  kernels::PhDesign ph_design(std::size_t index) const;
  kernels::WfVariant wf_variant(std::size_t index) const;

  /// Adds a worker to the running fleet at simulated time `now`. The
  /// worker is kJoining until now + join_warmup_seconds, then kActive.
  /// Returns its stable id.
  DeviceId join(const WorkerConfig& worker, SimTime now);

  /// Marks the worker kDraining at `now`: batches already on its timeline
  /// finish normally, but placement never picks it again unless every
  /// non-draining member is retired. No-op if already draining.
  void drain(DeviceId id, SimTime now);

  /// Permanently removes the worker from placement at `now` (terminal).
  /// Because dispatches resolve against the device timeline immediately,
  /// nothing is ever in limbo: retiring a worker — even a quarantined one
  /// — requeues nothing and drops nothing.
  void retire(DeviceId id, SimTime now);

  /// Lifecycle state of the worker as of simulated time `now`.
  WorkerState state(DeviceId id, SimTime now) const;

  /// Device-timeline end of one worker (when its queued work finishes).
  SimTime free_at(DeviceId id) const;

  /// Simulated time when the last device frees up (the fleet makespan so
  /// far).
  SimTime all_free_at() const noexcept;

  FleetStats stats() const;

  /// Dispatches one formed batch at simulated time `now`. Throws
  /// util::CheckError if the batch is empty, every retry attempt fails,
  /// or every worker is retired.
  SwExecution execute_sw(const workload::SwBatch& batch, SimTime now,
                         const ExecOptions& options = {});
  PhExecution execute_ph(const workload::PhBatch& batch, SimTime now,
                         const ExecOptions& options = {});

  /// The online calibration store (always constructed; inert unless
  /// config().calibration.enabled).
  const Calibrator& calibrator() const noexcept { return calibrator_; }

  /// Mean calibrated-capacity scale of the serving (non-draining,
  /// non-retired) members: 1.0 when calibration is off, < 1.0 when the
  /// fleet is running slower than spec. The autoscaler multiplies its
  /// Eq. 7/8 capacity model by this, so a silently degraded fleet scales
  /// out instead of blowing its SLO.
  double calibrated_capacity_scale(SimTime now) const;

 private:
  /// One registry entry: a simulated device plus its timeline, health,
  /// lifecycle flags, and lifetime counters. Never erased — `retired`
  /// freezes it in place so ids stay dense and stable.
  struct DeviceWorker {
    WorkerConfig cfg;
    kernels::CommMode sw_design;
    kernels::PhDesign ph_design;
    kernels::WfVariant wf_variant;
    double sw_gcups = 0.0;  ///< model prediction for the chosen SW design
    double ph_gcups = 0.0;  ///< model prediction for the chosen PH design
    double wf_gcups = 0.0;  ///< model prediction for the chosen wavefront variant
    /// Per-device regime model: occupancies and latencies of both SW
    /// subsystems, precomputed once so pick_parallelism per batch is cheap.
    IntraTaskModel intra;
    kernels::SwRunner sw_runner;
    kernels::PhRunner ph_runner;
    kernels::WavefrontSwRunner wf_runner;
    SimTime joined_at = 0.0;
    SimTime active_at = 0.0;  ///< warmup end; placeable from here
    bool draining = false;
    bool retired = false;
    SimTime free_at = 0.0;
    /// Batches not yet complete at the last observed time:
    /// (completion_time, cells).
    std::deque<std::pair<SimTime, std::size_t>> pending;
    std::size_t pending_cells = 0;
    DeviceHealth health;
    DeviceStats stats;
    std::uint64_t dispatch_seq = 0;  ///< feeds the FaultPlan hash
    /// Model-predicted backlog end, maintained by kCalibrated placement:
    /// what the dispatcher *believes* about this device's timeline, built
    /// only from calibrated predictions — never from the oracle free_at.
    SimTime model_busy_until = 0.0;
  };

  /// Registry append shared by the constructor (no warmup, no join count)
  /// and join().
  DeviceId add_worker(const WorkerConfig& wc, SimTime now, SimTime active_at);

  /// Derives the lifecycle state of one registry entry at time `t`.
  WorkerState worker_state(const DeviceWorker& w, SimTime t) const noexcept;

  /// Quarantines the worker at `t` (entering counts once; extending an
  /// active quarantine does not).
  void quarantine(DeviceWorker& w, SimTime t);

  /// Drops pending entries completed by `t` from every worker.
  void prune_pending(SimTime t);

  /// Whether an SW batch of `tasks` mean-(m, n) tasks runs on the
  /// wavefront subsystem on this worker — the 2-D regime decision, made
  /// with calibrated per-class factors when calibration is enabled (the
  /// online form of feeding calibrated terms into IntraTaskModel).
  bool routes_intra(const DeviceWorker& w, std::size_t mean_m,
                    std::size_t mean_n, std::size_t tasks) const;

  /// The calibration key of this batch on this worker: PairHMM, or SW
  /// split by the regime routing above.
  KernelClass kernel_class(const DeviceWorker& w, bool is_sw,
                           std::size_t mean_m, std::size_t mean_n,
                           std::size_t tasks) const;

  /// Uncalibrated Eq. 7/8 prediction of this batch on this worker for the
  /// given class — the baseline the Calibrator regresses against and the
  /// quantity kCalibrated placement scales by the learned factor.
  double predicted_seconds_for(const DeviceWorker& w, KernelClass cls,
                               std::size_t cells, std::size_t mean_m,
                               std::size_t mean_n, std::size_t tasks) const;

  /// Applies drift transitions returned by the Calibrator: stats,
  /// counters, trace events, flight-recorder dumps, and quarantine
  /// escalation.
  void handle_drift(const std::vector<DriftTransition>& transitions);

  /// Picks the worker for a batch of `cells` cells at time `t` under the
  /// configured policy. Eligibility relaxes in lifecycle rounds: kActive
  /// workers with queue room, then kActive ignoring bounds, then
  /// quarantined/joining members, then draining ones. Retired workers are
  /// never placed; `excluded` (the device of the failed attempt) is only
  /// reconsidered once the strict rounds come up empty. `tasks`/`mean_m`/
  /// `mean_n` describe the batch shape for the calibrated policy's
  /// per-class predictions.
  std::size_t place(std::size_t tasks, std::size_t cells, bool is_sw,
                    std::size_t mean_m, std::size_t mean_n, SimTime t,
                    int excluded);

  /// Shared dispatch loop: placement, fault check, retry/backoff, then
  /// `run(worker)` which executes the batch and returns its simulated
  /// service seconds (before any slowdown). Watchdog LaunchTimeout (and,
  /// under SDC injection, crashes the corruption caused) are treated as
  /// retryable failures. `force_device` pins the first attempt to one
  /// worker (re-execution on the flagged device); `excluded_initial`
  /// steers the first attempt away from one (re-execution elsewhere).
  template <typename RunBatch>
  Execution dispatch(std::size_t tasks, std::size_t cells, bool is_sw,
                     std::size_t mean_m, std::size_t mean_n, SimTime now,
                     int force_device, int excluded_initial, RunBatch&& run);

  /// Detection + escalation around `run_once`: screen the outputs per the
  /// configured DetectMode, re-execute flagged batches (same device, then
  /// another), and as the last step substitute the CPU reference.
  template <typename Exec, typename RunOnce, typename FlipsOf, typename Validate,
            typename FingerprintOf, typename CpuSubstitute>
  Exec guarded_execute(SimTime now, RunOnce&& run_once, FlipsOf&& flips_of,
                       Validate&& validate, FingerprintOf&& fingerprint_of,
                       CpuSubstitute&& cpu_substitute);

  /// Watchdog budget for one worker: its override, else the fleet-wide one.
  long long effective_budget(const DeviceWorker& worker) const noexcept;

  /// Health feedback for a verification that flagged device `w` at time
  /// `t`: repeated silent corruption quarantines the device.
  void note_sdc(std::size_t w, SimTime t);

  FleetConfig config_;
  simt::ExecutionEngine* engine_;  ///< non-null after construction
  /// Id-keyed registry: deque so join() never invalidates references to
  /// existing workers; index == DeviceId, entries are never erased.
  std::deque<DeviceWorker> workers_;
  std::size_t round_robin_next_ = 0;
  std::size_t dispatches_ = 0;
  std::size_t retries_ = 0;
  std::size_t requeues_ = 0;
  std::size_t joins_ = 0;
  std::size_t drains_ = 0;
  std::size_t retires_ = 0;
  SimTime last_time_ = 0.0;  ///< latest simulated time observed (for stats)
  guard::GuardStats guard_stats_;
  std::uint64_t sdc_launch_seq_ = 0;  ///< fresh SDC launch id per device run
  Calibrator calibrator_;
};

}  // namespace wsim::fleet
