#include "wsim/fleet/fleet.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/simt/watchdog.hpp"
#include "wsim/util/check.hpp"

namespace wsim::fleet {

std::string_view to_string(WorkerState state) noexcept {
  switch (state) {
    case WorkerState::kJoining:
      return "joining";
    case WorkerState::kActive:
      return "active";
    case WorkerState::kQuarantined:
      return "quarantined";
    case WorkerState::kDraining:
      return "draining";
    case WorkerState::kRetired:
      return "retired";
  }
  return "?";
}

std::string_view to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstandingCells:
      return "least-cells";
    case PlacementPolicy::kModelGuided:
      return "model";
    case PlacementPolicy::kCalibrated:
      return "calibrated";
  }
  return "?";
}

PlacementPolicy placement_policy_by_name(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return PlacementPolicy::kRoundRobin;
  }
  if (name == "least-cells") {
    return PlacementPolicy::kLeastOutstandingCells;
  }
  if (name == "model") {
    return PlacementPolicy::kModelGuided;
  }
  if (name == "calibrated") {
    return PlacementPolicy::kCalibrated;
  }
  throw util::CheckError("unknown placement policy '" + std::string(name) +
                         "' (valid: rr, least-cells, model, calibrated)");
}

std::size_t FleetStats::total_cells() const noexcept {
  std::size_t total = 0;
  for (const DeviceStats& d : devices) {
    total += d.cells;
  }
  return total;
}

double FleetStats::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const DeviceStats& d : devices) {
    total += d.busy_seconds;
  }
  return total;
}

double FleetStats::busy_skew() const noexcept {
  if (devices.empty()) {
    return 0.0;
  }
  double lo = devices.front().busy_seconds;
  double hi = lo;
  for (const DeviceStats& d : devices) {
    lo = std::min(lo, d.busy_seconds);
    hi = std::max(hi, d.busy_seconds);
  }
  const double mean = total_busy_seconds() / static_cast<double>(devices.size());
  return mean > 0.0 ? (hi - lo) / mean : 0.0;
}

double FleetStats::utilization(std::size_t device_index, double duration) const {
  util::require(device_index < devices.size(),
                "FleetStats::utilization: device index out of range");
  return duration > 0.0 ? devices[device_index].busy_seconds / duration : 0.0;
}

FleetExecutor::FleetExecutor(FleetConfig config)
    : config_(std::move(config)),
      engine_(config_.engine != nullptr ? config_.engine
                                        : &simt::shared_engine()),
      calibrator_(config_.calibration) {
  util::require(!config_.workers.empty(),
                "FleetExecutor: fleet needs at least one worker");
  util::require(config_.retry.max_attempts >= 1,
                "FleetExecutor: retry.max_attempts must be >= 1");
  for (const WorkerConfig& wc : config_.workers) {
    add_worker(wc, 0.0, /*active_at=*/0.0);
  }
}

DeviceId FleetExecutor::add_worker(const WorkerConfig& wc, SimTime now,
                                   SimTime active_at) {
  util::require(wc.max_pending_batches >= 1,
                "FleetExecutor: max_pending_batches must be >= 1");
  const VariantChoice choice = pick_variants(wc.device);
  const kernels::CommMode sw = wc.sw_design.value_or(choice.sw_design);
  const kernels::PhDesign ph = wc.ph_design.value_or(choice.ph_design);
  // The per-device regime model, honouring pinned designs so predicted
  // seconds describe the kernels this worker will actually run.
  IntraTaskModel intra = build_intra_task_model(wc.device);
  if (wc.sw_design.has_value() && intra.sw_design != sw) {
    intra.sw_design = sw;
    intra.sw_latency = sw_iteration_latency(wc.device, sw);
    const simt::Kernel sw_kernel = kernels::build_sw_kernel(sw, {});
    intra.sw_occupancy = simt::compute_occupancy(wc.device, sw_kernel);
    intra.sw_threads_per_block = sw_kernel.threads_per_block;
  }
  const kernels::WfVariant wf = wc.wf_variant.value_or(intra.wf_variant);
  if (intra.wf_variant != wf) {
    intra.wf_variant = wf;
    intra.wf_latency = wf_iteration_latency(wc.device, wf);
    const simt::Kernel wf_kernel =
        wf == kernels::WfVariant::kHostSyncNaive
            ? kernels::build_wf_naive_sw_kernel({})
            : kernels::build_wf_sw_kernel(wf, {});
    intra.wf_occupancy = simt::compute_occupancy(wc.device, wf_kernel);
    intra.wf_threads_per_block = wf_kernel.threads_per_block;
  }
  const DeviceId id = static_cast<DeviceId>(workers_.size());
  DeviceWorker worker{wc,
                      sw,
                      ph,
                      wf,
                      predicted_sw_gcups(wc.device, sw),
                      predicted_ph_gcups(wc.device, ph),
                      predicted_wf_gcups(wc.device, wf),
                      intra,
                      kernels::SwRunner(sw),
                      kernels::PhRunner(ph),
                      kernels::WavefrontSwRunner(wf),
                      now,
                      active_at,
                      /*draining=*/false,
                      /*retired=*/false,
                      // A warming-up device starts its timeline at the warmup
                      // end: work placed on it during kJoining (emergency
                      // relaxation) starts once it is active.
                      /*free_at=*/active_at,
                      {},
                      0,
                      {},
                      {},
                      0};
  worker.stats.name = wc.device.name;
  worker.stats.sw_design = sw;
  worker.stats.ph_design = ph;
  worker.stats.wf_variant = wf;
  worker.stats.id = id;
  worker.stats.joined_at = now;
  // The model-believed timeline starts where the oracle one does: at the
  // warmup end for a joining worker, at t=0 for the initial fleet.
  worker.model_busy_until = active_at;
  workers_.push_back(std::move(worker));
  calibrator_.resize(workers_.size());
  last_time_ = std::max(last_time_, now);
  return id;
}

DeviceId FleetExecutor::join(const WorkerConfig& worker, SimTime now) {
  const DeviceId id =
      add_worker(worker, now, now + config_.join_warmup_seconds);
  ++joins_;
  static obs::Counter c_joins("fleet.joins");
  c_joins.add();
  obs::instant(now, obs::Layer::kFleet, "fleet.join", static_cast<int>(id));
  return id;
}

void FleetExecutor::drain(DeviceId id, SimTime now) {
  util::require(id < workers_.size(), "FleetExecutor::drain: unknown DeviceId");
  DeviceWorker& w = workers_[id];
  util::require(!w.retired, "FleetExecutor::drain: worker already retired");
  last_time_ = std::max(last_time_, now);
  if (w.draining) {
    return;
  }
  w.draining = true;
  ++drains_;
  static obs::Counter c_drains("fleet.drains");
  c_drains.add();
  obs::instant(now, obs::Layer::kFleet, "fleet.drain", static_cast<int>(id));
}

void FleetExecutor::retire(DeviceId id, SimTime now) {
  util::require(id < workers_.size(), "FleetExecutor::retire: unknown DeviceId");
  DeviceWorker& w = workers_[id];
  util::require(!w.retired, "FleetExecutor::retire: worker already retired");
  last_time_ = std::max(last_time_, now);
  w.retired = true;
  ++retires_;
  static obs::Counter c_retires("fleet.retires");
  c_retires.add();
  obs::instant(now, obs::Layer::kFleet, "fleet.retire", static_cast<int>(id));
}

WorkerState FleetExecutor::worker_state(const DeviceWorker& w,
                                        SimTime t) const noexcept {
  if (w.retired) {
    return WorkerState::kRetired;
  }
  if (w.draining) {
    return WorkerState::kDraining;
  }
  if (t < w.active_at) {
    return WorkerState::kJoining;
  }
  if (!w.health.healthy_at(t)) {
    return WorkerState::kQuarantined;
  }
  return WorkerState::kActive;
}

WorkerState FleetExecutor::state(DeviceId id, SimTime now) const {
  util::require(id < workers_.size(), "FleetExecutor::state: unknown DeviceId");
  return worker_state(workers_[id], now);
}

SimTime FleetExecutor::free_at(DeviceId id) const {
  util::require(id < workers_.size(), "FleetExecutor::free_at: unknown DeviceId");
  return workers_[id].free_at;
}

const simt::DeviceSpec& FleetExecutor::device(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].cfg.device;
}

kernels::CommMode FleetExecutor::sw_design(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].sw_design;
}

kernels::PhDesign FleetExecutor::ph_design(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].ph_design;
}

kernels::WfVariant FleetExecutor::wf_variant(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].wf_variant;
}

SimTime FleetExecutor::all_free_at() const noexcept {
  SimTime latest = 0.0;
  for (const DeviceWorker& w : workers_) {
    latest = std::max(latest, w.free_at);
  }
  return latest;
}

FleetStats FleetExecutor::stats() const {
  FleetStats stats;
  stats.devices.reserve(workers_.size());
  for (const DeviceWorker& w : workers_) {
    DeviceStats d = w.stats;
    d.free_at = w.free_at;
    d.state = worker_state(w, last_time_);
    d.calibration_factor = calibrator_.dominant_factor(static_cast<int>(d.id));
    d.drift_state = calibrator_.drift_state(static_cast<int>(d.id));
    d.derated = calibrator_.derated(static_cast<int>(d.id));
    stats.devices.push_back(std::move(d));
  }
  stats.dispatches = dispatches_;
  stats.retries = retries_;
  stats.requeues = requeues_;
  stats.joins = joins_;
  stats.drains = drains_;
  stats.retires = retires_;
  stats.guard = guard_stats_;
  return stats;
}

long long FleetExecutor::effective_budget(
    const DeviceWorker& worker) const noexcept {
  return worker.cfg.max_block_cycles > 0 ? worker.cfg.max_block_cycles
                                         : config_.guard.max_block_cycles;
}

void FleetExecutor::quarantine(DeviceWorker& w, SimTime t) {
  if (w.health.healthy_at(t)) {
    ++w.stats.quarantines;
    static obs::Counter c_quarantines("fleet.quarantines");
    c_quarantines.add();
    obs::instant(t, obs::Layer::kFleet, "fleet.quarantine",
                 static_cast<int>(w.stats.id), w.dispatch_seq);
    obs::dump_flight("fleet quarantine: device " +
                         std::string(w.stats.name) + " (id " +
                         std::to_string(w.stats.id) + ")",
                     static_cast<int>(w.stats.id), w.dispatch_seq, t);
  }
  w.health.unhealthy_until =
      std::max(w.health.unhealthy_until, t + config_.retry.quarantine_seconds);
}

void FleetExecutor::note_sdc(std::size_t w, SimTime t) {
  DeviceWorker& worker = workers_[w];
  ++worker.stats.sdc_detected;
  static obs::Counter c_sdc("guard.sdc_detected");
  c_sdc.add();
  obs::instant(t, obs::Layer::kGuard, "guard.sdc_detected",
               static_cast<int>(w));
  ++worker.health.consecutive_sdc;
  if (config_.retry.unhealthy_after > 0 &&
      worker.health.consecutive_sdc >=
          static_cast<std::size_t>(config_.retry.unhealthy_after)) {
    quarantine(worker, t);
  }
}

void FleetExecutor::prune_pending(SimTime t) {
  for (DeviceWorker& w : workers_) {
    while (!w.pending.empty() && w.pending.front().first <= t) {
      w.pending_cells -= w.pending.front().second;
      w.pending.pop_front();
    }
  }
}

bool FleetExecutor::routes_intra(const DeviceWorker& w, std::size_t mean_m,
                                 std::size_t mean_n, std::size_t tasks) const {
  switch (config_.parallelism) {
    case ParallelismPolicy::kInterTask:
      return false;
    case ParallelismPolicy::kIntraTask:
      return true;
    case ParallelismPolicy::kAuto:
      break;
  }
  if (config_.calibration.enabled) {
    // The online form of a calibrated regime map: compare the regimes after
    // multiplying each prediction by its learned per-class factor, so a
    // device whose wavefront path runs biased against the model still flips
    // to the subsystem that is actually faster. During warm-up both factors
    // are exactly 1.0 and this reduces to pick_parallelism.
    const int dev = static_cast<int>(w.stats.id);
    const double inter = calibrator_.factor(dev, KernelClass::kSwInter) *
                         predicted_inter_batch_seconds(w.cfg.device, w.intra,
                                                       mean_m, mean_n, tasks);
    const double intra = calibrator_.factor(dev, KernelClass::kSwIntra) *
                         predicted_intra_batch_seconds(w.cfg.device, w.intra,
                                                       mean_m, mean_n, tasks);
    return intra < inter;
  }
  return pick_parallelism(w.cfg.device, w.intra, mean_m, mean_n, tasks) ==
         ParallelMode::kIntraTask;
}

KernelClass FleetExecutor::kernel_class(const DeviceWorker& w, bool is_sw,
                                        std::size_t mean_m, std::size_t mean_n,
                                        std::size_t tasks) const {
  if (!is_sw) {
    return KernelClass::kPairHmm;
  }
  return routes_intra(w, mean_m, mean_n, tasks) ? KernelClass::kSwIntra
                                                : KernelClass::kSwInter;
}

double FleetExecutor::predicted_seconds_for(const DeviceWorker& w,
                                            KernelClass cls, std::size_t cells,
                                            std::size_t mean_m,
                                            std::size_t mean_n,
                                            std::size_t tasks) const {
  switch (cls) {
    case KernelClass::kSwInter:
      return predicted_batch_seconds(w.cfg.device, w.sw_gcups, cells);
    case KernelClass::kSwIntra:
      return predicted_intra_batch_seconds(w.cfg.device, w.intra, mean_m,
                                           mean_n, tasks);
    case KernelClass::kPairHmm:
      return predicted_batch_seconds(w.cfg.device, w.ph_gcups, cells);
  }
  return predicted_batch_seconds(w.cfg.device, w.sw_gcups, cells);
}

void FleetExecutor::handle_drift(
    const std::vector<DriftTransition>& transitions) {
  for (const DriftTransition& tr : transitions) {
    DeviceWorker& w = workers_[static_cast<std::size_t>(tr.device)];
    if (tr.to == DriftState::kDriftSuspect) {
      ++w.stats.drift_suspects;
      static obs::Counter c_suspects("fleet.drift_suspects");
      c_suspects.add();
      obs::instant(tr.time, obs::Layer::kFleet, "fleet.drift_suspect",
                   tr.device, static_cast<std::uint64_t>(tr.window), tr.ratio);
    } else if (tr.to == DriftState::kDerated &&
               tr.from != DriftState::kDerated) {
      ++w.stats.derates;
      static obs::Counter c_derates("fleet.derates");
      c_derates.add();
      obs::instant(tr.time, obs::Layer::kFleet, "fleet.derate", tr.device,
                   static_cast<std::uint64_t>(tr.window), tr.ratio);
      obs::dump_flight("fleet drift derate: device " +
                           std::string(w.stats.name) + " (id " +
                           std::to_string(w.stats.id) + ", " +
                           std::string(to_string(tr.cls)) +
                           ") residual ratio " + std::to_string(tr.ratio) +
                           " over " + std::to_string(tr.window) +
                           " observations",
                       tr.device, static_cast<std::uint64_t>(tr.window),
                       tr.time);
    } else if (tr.from == DriftState::kDerated &&
               tr.to == DriftState::kNominal) {
      ++w.stats.requalifications;
      static obs::Counter c_requal("fleet.requalifications");
      c_requal.add();
      obs::instant(tr.time, obs::Layer::kFleet, "fleet.requalify", tr.device,
                   static_cast<std::uint64_t>(tr.window), tr.ratio);
    } else if (tr.to == DriftState::kNominal) {
      obs::instant(tr.time, obs::Layer::kFleet, "fleet.drift_cleared",
                   tr.device, static_cast<std::uint64_t>(tr.window), tr.ratio);
    }
    if (tr.escalate_quarantine) {
      quarantine(w, tr.time);
    }
  }
}

double FleetExecutor::calibrated_capacity_scale(SimTime now) const {
  std::vector<int> serving;
  serving.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerState s = worker_state(workers_[i], now);
    if (s == WorkerState::kRetired || s == WorkerState::kDraining) {
      continue;
    }
    serving.push_back(static_cast<int>(i));
  }
  return calibrator_.capacity_scale(serving);
}

std::size_t FleetExecutor::place(std::size_t tasks, std::size_t cells,
                                 bool is_sw, std::size_t mean_m,
                                 std::size_t mean_n, SimTime t, int excluded) {
  // Eligibility, relaxed in lifecycle rounds: active + not excluded +
  // queue room; then active ignoring queue bounds; then quarantined and
  // warming-up members (including the excluded device); then draining
  // workers. Retired workers are never placed. When relaxation was needed,
  // the batch goes to whichever device frees earliest — the deterministic
  // equivalent of stalling for the first open slot.
  std::vector<std::size_t> eligible;
  const auto collect = [&](bool respect_bounds, bool active_only,
                           bool allow_draining) {
    eligible.clear();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const DeviceWorker& w = workers_[i];
      const WorkerState s = worker_state(w, t);
      if (s == WorkerState::kRetired) {
        continue;
      }
      if (s == WorkerState::kDraining && !allow_draining) {
        continue;
      }
      if (active_only &&
          (static_cast<int>(i) == excluded || s != WorkerState::kActive)) {
        continue;
      }
      if (respect_bounds && w.pending.size() >= w.cfg.max_pending_batches) {
        continue;
      }
      eligible.push_back(i);
    }
  };
  collect(true, true, false);
  bool relaxed = false;
  if (eligible.empty()) {
    collect(false, true, false);
    relaxed = true;
  }
  if (eligible.empty()) {
    collect(false, false, false);
  }
  if (eligible.empty()) {
    collect(false, false, true);
  }
  util::require(!eligible.empty(),
                "FleetExecutor: no placeable device (every worker is retired)");

  if (relaxed) {
    std::size_t best = eligible.front();
    for (const std::size_t i : eligible) {
      if (workers_[i].free_at < workers_[best].free_at) {
        best = i;
      }
    }
    return best;
  }

  switch (config_.policy) {
    case PlacementPolicy::kRoundRobin: {
      for (std::size_t k = 0; k < workers_.size(); ++k) {
        const std::size_t i = (round_robin_next_ + k) % workers_.size();
        if (std::find(eligible.begin(), eligible.end(), i) != eligible.end()) {
          round_robin_next_ = i + 1;
          return i;
        }
      }
      return eligible.front();  // unreachable: eligible is non-empty
    }
    case PlacementPolicy::kLeastOutstandingCells: {
      std::size_t best = eligible.front();
      for (const std::size_t i : eligible) {
        if (workers_[i].pending_cells < workers_[best].pending_cells) {
          best = i;
        }
      }
      return best;
    }
    case PlacementPolicy::kModelGuided: {
      std::size_t best = eligible.front();
      double best_finish = std::numeric_limits<double>::infinity();
      for (const std::size_t i : eligible) {
        const DeviceWorker& w = workers_[i];
        const double gcups = is_sw ? w.sw_gcups : w.ph_gcups;
        const double finish = std::max(t, w.free_at) +
                              predicted_batch_seconds(w.cfg.device, gcups, cells);
        if (finish < best_finish) {
          best_finish = finish;
          best = i;
        }
      }
      return best;
    }
    case PlacementPolicy::kCalibrated: {
      // A derated device would never win the finish-time race below, so
      // placement force-probes one that has gone unobserved too long —
      // otherwise it could never prove recovery and requalify.
      for (const std::size_t i : eligible) {
        if (calibrator_.probe_due(static_cast<int>(i))) {
          ++workers_[i].stats.probes;
          static obs::Counter c_probes("fleet.drift_probes");
          c_probes.add();
          obs::instant(t, obs::Layer::kFleet, "fleet.drift_probe",
                       static_cast<int>(i));
          return i;
        }
      }
      // Earliest *believed* finish: model-predicted backlog plus this
      // batch's calibrated prediction. Unlike kModelGuided this never reads
      // the oracle free_at, so with calibration off a silently degraded
      // device keeps its spec-rate share — the honest disaster the
      // calibration factors exist to prevent.
      std::size_t best = eligible.front();
      double best_finish = std::numeric_limits<double>::infinity();
      for (const std::size_t i : eligible) {
        const DeviceWorker& w = workers_[i];
        const KernelClass cls = kernel_class(w, is_sw, mean_m, mean_n, tasks);
        const double predicted =
            calibrator_.factor(static_cast<int>(i), cls) *
            predicted_seconds_for(w, cls, cells, mean_m, mean_n, tasks);
        const double finish = std::max(t, w.model_busy_until) + predicted;
        if (finish < best_finish) {
          best_finish = finish;
          best = i;
        }
      }
      return best;
    }
  }
  return eligible.front();
}

template <typename RunBatch>
Execution FleetExecutor::dispatch(std::size_t tasks, std::size_t cells,
                                  bool is_sw, std::size_t mean_m,
                                  std::size_t mean_n, SimTime now,
                                  int force_device, int excluded_initial,
                                  RunBatch&& run) {
  SimTime t = now;
  int attempt = 0;
  int excluded = excluded_initial;
  for (;;) {
    prune_pending(t);
    std::size_t w;
    if (force_device >= 0) {
      w = static_cast<std::size_t>(force_device);
      force_device = -1;  // a failed pinned attempt retries by placement
    } else {
      w = place(tasks, cells, is_sw, mean_m, mean_n, t, excluded);
    }
    DeviceWorker& worker = workers_[w];
    const std::uint64_t seq = worker.dispatch_seq++;
    // One failed attempt: health feedback, quarantine check, backoff, and
    // steer the retry away from this device. Throws after max_attempts
    // with the last failure's text, so callers (and serve tickets) see
    // what actually went wrong.
    const auto fail_attempt = [&](const std::string& why) {
      // Close the calibration seq gap this consumed-but-unobserved
      // dispatch leaves, so buffered successors are not held up forever.
      handle_drift(calibrator_.skip(static_cast<int>(w), seq));
      ++worker.health.launch_failures;
      ++worker.health.consecutive_failures;
      if (config_.retry.unhealthy_after > 0 &&
          worker.health.consecutive_failures >=
              static_cast<std::size_t>(config_.retry.unhealthy_after)) {
        quarantine(worker, t);
      }
      ++attempt;
      if (attempt >= config_.retry.max_attempts) {
        throw util::CheckError(
            "FleetExecutor: batch failed after " + std::to_string(attempt) +
            " attempts (last failure: " + why + ")");
      }
      ++retries_;
      static obs::Counter c_retries("fleet.retries");
      c_retries.add();
      obs::instant(t, obs::Layer::kFleet, "fleet.retry", static_cast<int>(w),
                   seq, static_cast<double>(attempt));
      t += config_.retry.backoff(attempt - 1);
      excluded = static_cast<int>(w);
    };
    if (config_.faults.launch_fails(static_cast<int>(w), seq)) {
      ++worker.stats.launch_failures;
      obs::instant(t, obs::Layer::kFleet, "fleet.launch_failure",
                   static_cast<int>(w), seq);
      fail_attempt(
          "injected transient launch failure; raise RetryPolicy::max_attempts "
          "or lower FaultPlan::launch_failure_prob");
      continue;
    }
    worker.health.consecutive_failures = 0;
    double base_seconds = 0.0;
    try {
      base_seconds = run(worker);
    } catch (const simt::LaunchTimeout& timeout) {
      ++worker.stats.timeouts;
      ++guard_stats_.watchdog_timeouts;
      static obs::Counter c_timeouts("fleet.watchdog_timeouts");
      c_timeouts.add();
      obs::instant(t, obs::Layer::kFleet, "fleet.watchdog_timeout",
                   static_cast<int>(w), seq);
      obs::dump_flight(std::string("fleet watchdog timeout: ") +
                           timeout.what(),
                       static_cast<int>(w), seq, t);
      fail_attempt(timeout.what());
      continue;
    } catch (const util::CheckError& error) {
      if (!config_.guard.sdc.enabled()) {
        throw;  // without injection this is a programming error, not noise
      }
      // A flipped address or count register crashed the launch (OOB access,
      // underflow, ...): under injection that is a retryable device fault.
      fail_attempt(error.what());
      continue;
    }
    const double fault_multiplier =
        config_.faults.service_multiplier(static_cast<int>(w), seq);
    if (fault_multiplier > 1.0) {
      ++worker.stats.slowdowns;
    }
    // Silent degradation stretches service time on top of any slowdown
    // fault without touching a single counter — nothing for the health
    // channel or the stats to see. Only the calibration residuals can.
    const double multiplier =
        fault_multiplier *
        config_.faults.degraded_multiplier(static_cast<int>(w), seq);
    Execution exec;
    exec.device_index = static_cast<int>(w);
    exec.attempts = attempt + 1;
    exec.service_seconds = base_seconds * multiplier;
    exec.start_time = std::max(t, worker.free_at);
    exec.completion_time = exec.start_time + exec.service_seconds;
    worker.free_at = exec.completion_time;
    const bool calibrated_policy =
        config_.policy == PlacementPolicy::kCalibrated;
    if (calibrated_policy || config_.calibration.enabled) {
      const KernelClass cls = kernel_class(worker, is_sw, mean_m, mean_n, tasks);
      const double predicted =
          predicted_seconds_for(worker, cls, cells, mean_m, mean_n, tasks);
      if (calibrated_policy) {
        // Extend the believed timeline with the factor placement used —
        // the backlog model must reflect what the dispatcher knew, not
        // what this observation is about to teach it. Maintained even with
        // calibration off (factor pinned at 1.0): the backlog model is the
        // policy's, only the correction factors are the calibrator's.
        worker.model_busy_until =
            std::max(t, worker.model_busy_until) +
            calibrator_.factor(static_cast<int>(w), cls) * predicted;
      }
      if (config_.calibration.enabled) {
        handle_drift(calibrator_.observe(static_cast<int>(w), cls, seq,
                                         predicted, exec.service_seconds,
                                         exec.completion_time));
        static obs::Gauge g_factor("fleet.calibration_factor");
        g_factor.set(calibrator_.dominant_factor(static_cast<int>(w)));
      }
    }
    worker.pending.emplace_back(exec.completion_time, cells);
    worker.pending_cells += cells;
    worker.stats.busy_seconds += exec.service_seconds;
    ++worker.stats.batches;
    worker.stats.tasks += tasks;
    worker.stats.cells += cells;
    ++dispatches_;
    static obs::Counter c_dispatches("fleet.dispatches");
    static obs::Histogram h_batch_seconds("fleet.batch_seconds");
    c_dispatches.add();
    h_batch_seconds.observe(exec.service_seconds);
    obs::span_begin(exec.start_time, obs::Layer::kFleet, "fleet.batch",
                    static_cast<int>(w), seq, static_cast<double>(tasks),
                    static_cast<double>(cells));
    obs::span_end(exec.completion_time, obs::Layer::kFleet, "fleet.batch",
                  static_cast<int>(w), seq);
    last_time_ = std::max(last_time_, exec.completion_time);
    if (attempt > 0 && excluded != static_cast<int>(w)) {
      ++requeues_;
    }
    return exec;
  }
}

template <typename Exec, typename RunOnce, typename FlipsOf, typename Validate,
          typename FingerprintOf, typename CpuSubstitute>
Exec FleetExecutor::guarded_execute(SimTime now, RunOnce&& run_once,
                                    FlipsOf&& flips_of, Validate&& validate,
                                    FingerprintOf&& fingerprint_of,
                                    CpuSubstitute&& cpu_substitute) {
  Exec first = run_once(now, /*force=*/-1, /*excluded=*/-1);
  guard_stats_.sdc_flips += flips_of(first);
  ++guard_stats_.verified_batches;

  if (config_.guard.detect == guard::DetectMode::kAbft) {
    std::optional<std::string> verdict = validate(first);
    if (!verdict.has_value()) {
      workers_[static_cast<std::size_t>(first.exec.device_index)]
          .health.consecutive_sdc = 0;
      if (flips_of(first) > 0) {
        ++guard_stats_.sdc_masked;
      }
      return first;
    }
    ++guard_stats_.sdc_detected;
    note_sdc(static_cast<std::size_t>(first.exec.device_index),
             first.exec.completion_time);
    Exec flagged = std::move(first);
    for (int redo = 0; redo < config_.guard.max_reexecutions; ++redo) {
      // Escalation: first retry prefers the flagged device (a transient
      // upset clears), the next avoids it (a sick device does not).
      const int device = flagged.exec.device_index;
      Exec rerun = run_once(flagged.exec.completion_time,
                            redo == 0 ? device : -1, redo == 0 ? -1 : device);
      ++guard_stats_.reexecutions;
      { static obs::Counter c_redo("guard.reexecutions"); c_redo.add(); }
      guard_stats_.sdc_flips += flips_of(rerun);
      rerun.exec.reexecutions = flagged.exec.reexecutions + 1;
      verdict = validate(rerun);
      if (!verdict.has_value()) {
        ++guard_stats_.sdc_corrected;
        obs::instant(rerun.exec.completion_time, obs::Layer::kGuard,
                     "guard.sdc_corrected", rerun.exec.device_index);
        workers_[static_cast<std::size_t>(rerun.exec.device_index)]
            .health.consecutive_sdc = 0;
        if (flips_of(rerun) > 0) {
          ++guard_stats_.sdc_masked;
        }
        return rerun;
      }
      ++guard_stats_.sdc_detected;
      note_sdc(static_cast<std::size_t>(rerun.exec.device_index),
               rerun.exec.completion_time);
      flagged = std::move(rerun);
    }
    if (!config_.guard.cpu_fallback) {
      throw util::CheckError("guard: batch still failing verification after " +
                             std::to_string(config_.guard.max_reexecutions) +
                             " re-executions (" + *verdict + ")");
    }
    cpu_substitute(flagged);
    flagged.exec.cpu_fallback = true;
    ++guard_stats_.cpu_fallbacks;
    obs::instant(flagged.exec.completion_time, obs::Layer::kGuard,
                 "guard.cpu_fallback", flagged.exec.device_index);
    return flagged;
  }

  // kDual: the batch runs twice (different devices when possible, always
  // disjoint SDC streams); exact fingerprint agreement certifies the
  // outputs, a mismatch escalates to a third run and a 2-of-3 vote.
  Exec second =
      run_once(first.exec.completion_time, /*force=*/-1, first.exec.device_index);
  ++guard_stats_.reexecutions;
  { static obs::Counter c_redo("guard.reexecutions"); c_redo.add(); }
  guard_stats_.sdc_flips += flips_of(second);
  const std::uint64_t print1 = fingerprint_of(first);
  const std::uint64_t print2 = fingerprint_of(second);
  if (print1 == print2) {
    workers_[static_cast<std::size_t>(first.exec.device_index)]
        .health.consecutive_sdc = 0;
    workers_[static_cast<std::size_t>(second.exec.device_index)]
        .health.consecutive_sdc = 0;
    if (flips_of(first) + flips_of(second) > 0) {
      ++guard_stats_.sdc_masked;
    }
    first.exec.reexecutions += 1;
    first.exec.completion_time =
        std::max(first.exec.completion_time, second.exec.completion_time);
    return first;
  }
  ++guard_stats_.sdc_detected;
  Exec third = run_once(second.exec.completion_time, /*force=*/-1, /*excluded=*/-1);
  ++guard_stats_.reexecutions;
  { static obs::Counter c_redo("guard.reexecutions"); c_redo.add(); }
  guard_stats_.sdc_flips += flips_of(third);
  const std::uint64_t print3 = fingerprint_of(third);
  if (print3 == print1 || print3 == print2) {
    const Exec& loser = print3 == print1 ? second : first;
    note_sdc(static_cast<std::size_t>(loser.exec.device_index),
             loser.exec.completion_time);
    Exec winner = print3 == print1 ? std::move(first) : std::move(second);
    ++guard_stats_.sdc_corrected;
    obs::instant(third.exec.completion_time, obs::Layer::kGuard,
                 "guard.sdc_corrected", winner.exec.device_index);
    winner.exec.reexecutions += 2;
    winner.exec.completion_time = third.exec.completion_time;
    return winner;
  }
  if (!config_.guard.cpu_fallback) {
    throw util::CheckError(
        "guard: three dual-execution runs disagree pairwise; no quorum");
  }
  cpu_substitute(third);
  third.exec.cpu_fallback = true;
  third.exec.reexecutions += 2;
  ++guard_stats_.cpu_fallbacks;
  obs::instant(third.exec.completion_time, obs::Layer::kGuard,
               "guard.cpu_fallback", third.exec.device_index);
  return third;
}

SwExecution FleetExecutor::execute_sw(const workload::SwBatch& batch,
                                      SimTime now, const ExecOptions& options) {
  util::require(!batch.empty(), "FleetExecutor::execute_sw: empty batch");
  const std::size_t cells = workload::batch_cells(batch);
  // The 2-D regime decision works on the batch's mean task shape — batches
  // formed by length grouping are near-uniform, and region batches mix
  // lengths narrowly enough for the mean to be representative.
  std::size_t sum_m = 0;
  std::size_t sum_n = 0;
  for (const workload::SwTask& task : batch) {
    sum_m += task.query.size();
    sum_n += task.target.size();
  }
  const std::size_t mean_m = std::max<std::size_t>(1, sum_m / batch.size());
  const std::size_t mean_n = std::max<std::size_t>(1, sum_n / batch.size());
  // Shared by the guarded path and the timing-only fallback below. Both
  // subsystems produce bit-identical outputs, so routing is invisible to
  // the guard's validation and fingerprinting.
  const auto run_sw_on = [&](DeviceWorker& worker, bool collect,
                             kernels::SwBatchResult& result) {
    if (routes_intra(worker, mean_m, mean_n, batch.size())) {
      kernels::WfRunOptions opt;
      opt.engine = engine_;
      opt.overlap_transfers = options.overlap_transfers;
      opt.max_block_cycles = effective_budget(worker);
      if (collect) {
        opt.collect_outputs = true;
        if (config_.guard.sdc.enabled()) {
          opt.sdc = config_.guard.sdc;
          opt.sdc_launch_id = sdc_launch_seq_++;
        }
      } else {
        opt.mode = simt::ExecMode::kCachedByShape;
        opt.use_engine_cache = true;
      }
      kernels::WfSwBatchResult wf =
          worker.wf_runner.run_batch(worker.cfg.device, batch, opt);
      result.run = std::move(wf.run);
      result.outputs = std::move(wf.outputs);
      ++worker.stats.intra_batches;
      return result.run.launch.total_seconds();
    }
    kernels::SwRunOptions opt;
    opt.engine = engine_;
    opt.overlap_transfers = options.overlap_transfers;
    opt.max_block_cycles = effective_budget(worker);
    if (collect) {
      opt.collect_outputs = true;
      if (config_.guard.sdc.enabled()) {
        opt.sdc = config_.guard.sdc;
        opt.sdc_launch_id = sdc_launch_seq_++;
      }
    } else {
      opt.mode = simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
    }
    result = worker.sw_runner.run_batch(worker.cfg.device, batch, opt);
    return result.run.launch.total_seconds();
  };
  const auto run_once = [&](SimTime when, int force, int excluded) {
    SwExecution out;
    out.exec =
        dispatch(batch.size(), cells, /*is_sw=*/true, mean_m, mean_n, when,
                 force, excluded, [&](DeviceWorker& worker) {
                   return run_sw_on(worker, options.collect_outputs, out.result);
                 });
    return out;
  };
  const align::SwParams& params = workers_.front().sw_runner.params();
  try {
    if (!options.collect_outputs || !config_.guard.verifying()) {
      SwExecution out = run_once(now, -1, -1);
      guard_stats_.sdc_flips += out.result.run.launch.sdc_flips;
      return out;
    }
    return guarded_execute<SwExecution>(
        now, run_once,
        [](const SwExecution& e) { return e.result.run.launch.sdc_flips; },
        [&](const SwExecution& e) {
          return guard::validate_sw(batch, e.result.outputs, params);
        },
        [](const SwExecution& e) { return guard::fingerprint_sw(e.result.outputs); },
        [&](SwExecution& e) { e.result.outputs = guard::cpu_sw(batch, params); });
  } catch (const util::CheckError&) {
    if (!options.collect_outputs || !config_.guard.sdc.enabled() ||
        !config_.guard.cpu_fallback) {
      throw;
    }
    // Injected corruption hit an address register on every attempt —
    // fail-stop, not silent. Timing comes from a clean shape-cached
    // dispatch; the values from the bit-identical CPU reference.
    SwExecution out;
    out.exec = dispatch(batch.size(), cells, /*is_sw=*/true, mean_m, mean_n,
                        now, -1, -1, [&](DeviceWorker& worker) {
                          return run_sw_on(worker, /*collect=*/false,
                                           out.result);
                        });
    out.result.outputs = guard::cpu_sw(batch, params);
    out.exec.cpu_fallback = true;
    ++guard_stats_.cpu_fallbacks;
    obs::instant(out.exec.completion_time, obs::Layer::kGuard,
                 "guard.cpu_fallback", out.exec.device_index);
    return out;
  }
}

PhExecution FleetExecutor::execute_ph(const workload::PhBatch& batch,
                                      SimTime now, const ExecOptions& options) {
  util::require(!batch.empty(), "FleetExecutor::execute_ph: empty batch");
  const std::size_t cells = workload::batch_cells(batch);
  const auto run_once = [&](SimTime when, int force, int excluded) {
    PhExecution out;
    out.exec =
        dispatch(batch.size(), cells, /*is_sw=*/false, /*mean_m=*/1,
                 /*mean_n=*/1, when, force, excluded,
                 [&](DeviceWorker& worker) {
                   kernels::PhRunOptions opt;
                   opt.engine = engine_;
                   opt.overlap_transfers = options.overlap_transfers;
                   opt.max_block_cycles = effective_budget(worker);
                   if (options.collect_outputs) {
                     opt.collect_outputs = true;
                     opt.double_fallback = options.double_fallback;
                     if (config_.guard.sdc.enabled()) {
                       opt.sdc = config_.guard.sdc;
                       opt.sdc_launch_id = sdc_launch_seq_++;
                     }
                   } else {
                     opt.mode = simt::ExecMode::kCachedByShape;
                     opt.use_engine_cache = true;
                   }
                   out.result =
                       worker.ph_runner.run_batch(worker.cfg.device, batch, opt);
                   return out.result.run.launch.total_seconds();
                 });
    return out;
  };
  try {
    if (!options.collect_outputs || !config_.guard.verifying()) {
      PhExecution out = run_once(now, -1, -1);
      guard_stats_.sdc_flips += out.result.run.launch.sdc_flips;
      return out;
    }
    return guarded_execute<PhExecution>(
        now, run_once,
        [](const PhExecution& e) { return e.result.run.launch.sdc_flips; },
        [&](const PhExecution& e) { return guard::validate_ph(batch, e.result.log10); },
        [](const PhExecution& e) { return guard::fingerprint_ph(e.result.log10); },
        [&](PhExecution& e) { e.result.log10 = guard::cpu_ph(batch); });
  } catch (const util::CheckError&) {
    if (!options.collect_outputs || !config_.guard.sdc.enabled() ||
        !config_.guard.cpu_fallback) {
      throw;
    }
    // As in execute_sw: crashes exhausted every attempt, so answer from
    // the CPU reference (accurate, though not bit-identical for PairHMM).
    PhExecution out;
    out.exec = dispatch(batch.size(), cells, /*is_sw=*/false, /*mean_m=*/1,
                        /*mean_n=*/1, now, -1, -1, [&](DeviceWorker& worker) {
                          kernels::PhRunOptions opt;
                          opt.engine = engine_;
                          opt.overlap_transfers = options.overlap_transfers;
                          opt.mode = simt::ExecMode::kCachedByShape;
                          opt.use_engine_cache = true;
                          out.result = worker.ph_runner.run_batch(
                              worker.cfg.device, batch, opt);
                          return out.result.run.launch.total_seconds();
                        });
    out.result.log10 = guard::cpu_ph(batch);
    out.exec.cpu_fallback = true;
    ++guard_stats_.cpu_fallbacks;
    obs::instant(out.exec.completion_time, obs::Layer::kGuard,
                 "guard.cpu_fallback", out.exec.device_index);
    return out;
  }
}

}  // namespace wsim::fleet
