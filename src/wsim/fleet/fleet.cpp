#include "wsim/fleet/fleet.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::fleet {

std::string_view to_string(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kLeastOutstandingCells:
      return "least-cells";
    case PlacementPolicy::kModelGuided:
      return "model";
  }
  return "?";
}

PlacementPolicy placement_policy_by_name(std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return PlacementPolicy::kRoundRobin;
  }
  if (name == "least-cells") {
    return PlacementPolicy::kLeastOutstandingCells;
  }
  if (name == "model") {
    return PlacementPolicy::kModelGuided;
  }
  throw util::CheckError("unknown placement policy '" + std::string(name) +
                         "' (valid: rr, least-cells, model)");
}

std::size_t FleetStats::total_cells() const noexcept {
  std::size_t total = 0;
  for (const DeviceStats& d : devices) {
    total += d.cells;
  }
  return total;
}

double FleetStats::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const DeviceStats& d : devices) {
    total += d.busy_seconds;
  }
  return total;
}

double FleetStats::busy_skew() const noexcept {
  if (devices.empty()) {
    return 0.0;
  }
  double lo = devices.front().busy_seconds;
  double hi = lo;
  for (const DeviceStats& d : devices) {
    lo = std::min(lo, d.busy_seconds);
    hi = std::max(hi, d.busy_seconds);
  }
  const double mean = total_busy_seconds() / static_cast<double>(devices.size());
  return mean > 0.0 ? (hi - lo) / mean : 0.0;
}

double FleetStats::utilization(std::size_t device_index, double duration) const {
  util::require(device_index < devices.size(),
                "FleetStats::utilization: device index out of range");
  return duration > 0.0 ? devices[device_index].busy_seconds / duration : 0.0;
}

FleetExecutor::FleetExecutor(FleetConfig config)
    : config_(std::move(config)),
      engine_(config_.engine != nullptr ? config_.engine
                                        : &simt::shared_engine()) {
  util::require(!config_.workers.empty(),
                "FleetExecutor: fleet needs at least one worker");
  util::require(config_.retry.max_attempts >= 1,
                "FleetExecutor: retry.max_attempts must be >= 1");
  workers_.reserve(config_.workers.size());
  for (const WorkerConfig& wc : config_.workers) {
    util::require(wc.max_pending_batches >= 1,
                  "FleetExecutor: max_pending_batches must be >= 1");
    const VariantChoice choice = pick_variants(wc.device);
    const kernels::CommMode sw = wc.sw_design.value_or(choice.sw_design);
    const kernels::PhDesign ph = wc.ph_design.value_or(choice.ph_design);
    Worker worker{wc,
                  sw,
                  ph,
                  predicted_sw_gcups(wc.device, sw),
                  predicted_ph_gcups(wc.device, ph),
                  kernels::SwRunner(sw),
                  kernels::PhRunner(ph),
                  0.0,
                  {},
                  0,
                  {},
                  {},
                  0};
    worker.stats.name = wc.device.name;
    worker.stats.sw_design = sw;
    worker.stats.ph_design = ph;
    workers_.push_back(std::move(worker));
  }
}

const simt::DeviceSpec& FleetExecutor::device(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].cfg.device;
}

kernels::CommMode FleetExecutor::sw_design(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].sw_design;
}

kernels::PhDesign FleetExecutor::ph_design(std::size_t index) const {
  util::require(index < workers_.size(), "FleetExecutor: device index out of range");
  return workers_[index].ph_design;
}

SimTime FleetExecutor::all_free_at() const noexcept {
  SimTime latest = 0.0;
  for (const Worker& w : workers_) {
    latest = std::max(latest, w.free_at);
  }
  return latest;
}

FleetStats FleetExecutor::stats() const {
  FleetStats stats;
  stats.devices.reserve(workers_.size());
  for (const Worker& w : workers_) {
    DeviceStats d = w.stats;
    d.free_at = w.free_at;
    stats.devices.push_back(std::move(d));
  }
  stats.dispatches = dispatches_;
  stats.retries = retries_;
  stats.requeues = requeues_;
  return stats;
}

void FleetExecutor::prune_pending(SimTime t) {
  for (Worker& w : workers_) {
    while (!w.pending.empty() && w.pending.front().first <= t) {
      w.pending_cells -= w.pending.front().second;
      w.pending.pop_front();
    }
  }
}

std::size_t FleetExecutor::place(std::size_t cells, bool is_sw, SimTime t,
                                 int excluded) {
  // Eligibility, relaxed in rounds: healthy + not excluded + queue room;
  // then ignore queue bounds; then take anyone (single device, or every
  // device quarantined). When relaxation was needed, the batch goes to
  // whichever device frees earliest — the deterministic equivalent of
  // stalling for the first open slot.
  std::vector<std::size_t> eligible;
  const auto collect = [&](bool respect_bounds, bool respect_health) {
    eligible.clear();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = workers_[i];
      if (respect_health &&
          (static_cast<int>(i) == excluded || !w.health.healthy_at(t))) {
        continue;
      }
      if (respect_bounds && w.pending.size() >= w.cfg.max_pending_batches) {
        continue;
      }
      eligible.push_back(i);
    }
  };
  collect(true, true);
  bool relaxed = false;
  if (eligible.empty()) {
    collect(false, true);
    relaxed = true;
  }
  if (eligible.empty()) {
    collect(false, false);
  }

  if (relaxed) {
    std::size_t best = eligible.front();
    for (const std::size_t i : eligible) {
      if (workers_[i].free_at < workers_[best].free_at) {
        best = i;
      }
    }
    return best;
  }

  switch (config_.policy) {
    case PlacementPolicy::kRoundRobin: {
      for (std::size_t k = 0; k < workers_.size(); ++k) {
        const std::size_t i = (round_robin_next_ + k) % workers_.size();
        if (std::find(eligible.begin(), eligible.end(), i) != eligible.end()) {
          round_robin_next_ = i + 1;
          return i;
        }
      }
      return eligible.front();  // unreachable: eligible is non-empty
    }
    case PlacementPolicy::kLeastOutstandingCells: {
      std::size_t best = eligible.front();
      for (const std::size_t i : eligible) {
        if (workers_[i].pending_cells < workers_[best].pending_cells) {
          best = i;
        }
      }
      return best;
    }
    case PlacementPolicy::kModelGuided: {
      std::size_t best = eligible.front();
      double best_finish = std::numeric_limits<double>::infinity();
      for (const std::size_t i : eligible) {
        const Worker& w = workers_[i];
        const double gcups = is_sw ? w.sw_gcups : w.ph_gcups;
        const double finish = std::max(t, w.free_at) +
                              predicted_batch_seconds(w.cfg.device, gcups, cells);
        if (finish < best_finish) {
          best_finish = finish;
          best = i;
        }
      }
      return best;
    }
  }
  return eligible.front();
}

template <typename RunBatch>
Execution FleetExecutor::dispatch(std::size_t tasks, std::size_t cells,
                                  bool is_sw, SimTime now, RunBatch&& run) {
  SimTime t = now;
  int attempt = 0;
  int excluded = -1;
  for (;;) {
    prune_pending(t);
    const std::size_t w = place(cells, is_sw, t, excluded);
    Worker& worker = workers_[w];
    const std::uint64_t seq = worker.dispatch_seq++;
    if (config_.faults.launch_fails(static_cast<int>(w), seq)) {
      ++worker.stats.launch_failures;
      ++worker.health.launch_failures;
      ++worker.health.consecutive_failures;
      if (config_.retry.unhealthy_after > 0 &&
          worker.health.consecutive_failures >=
              static_cast<std::size_t>(config_.retry.unhealthy_after)) {
        worker.health.unhealthy_until = t + config_.retry.quarantine_seconds;
      }
      ++attempt;
      if (attempt >= config_.retry.max_attempts) {
        throw util::CheckError(
            "FleetExecutor: batch failed after " + std::to_string(attempt) +
            " attempts (all transient launch failures; raise "
            "RetryPolicy::max_attempts or lower FaultPlan::launch_failure_prob)");
      }
      ++retries_;
      t += config_.retry.backoff(attempt - 1);
      excluded = static_cast<int>(w);
      continue;
    }
    worker.health.consecutive_failures = 0;
    const double base_seconds = run(worker);
    const double multiplier =
        config_.faults.service_multiplier(static_cast<int>(w), seq);
    if (multiplier > 1.0) {
      ++worker.stats.slowdowns;
    }
    Execution exec;
    exec.device_index = static_cast<int>(w);
    exec.attempts = attempt + 1;
    exec.service_seconds = base_seconds * multiplier;
    exec.start_time = std::max(t, worker.free_at);
    exec.completion_time = exec.start_time + exec.service_seconds;
    worker.free_at = exec.completion_time;
    worker.pending.emplace_back(exec.completion_time, cells);
    worker.pending_cells += cells;
    worker.stats.busy_seconds += exec.service_seconds;
    ++worker.stats.batches;
    worker.stats.tasks += tasks;
    worker.stats.cells += cells;
    ++dispatches_;
    if (attempt > 0 && excluded != static_cast<int>(w)) {
      ++requeues_;
    }
    return exec;
  }
}

SwExecution FleetExecutor::execute_sw(const workload::SwBatch& batch,
                                      SimTime now, const ExecOptions& options) {
  util::require(!batch.empty(), "FleetExecutor::execute_sw: empty batch");
  const std::size_t cells = workload::batch_cells(batch);
  SwExecution out;
  out.exec = dispatch(batch.size(), cells, /*is_sw=*/true, now,
                      [&](Worker& worker) {
                        kernels::SwRunOptions opt;
                        opt.engine = engine_;
                        opt.overlap_transfers = options.overlap_transfers;
                        if (options.collect_outputs) {
                          opt.collect_outputs = true;
                        } else {
                          opt.mode = simt::ExecMode::kCachedByShape;
                          opt.use_engine_cache = true;
                        }
                        out.result =
                            worker.sw_runner.run_batch(worker.cfg.device, batch, opt);
                        return out.result.run.launch.total_seconds();
                      });
  return out;
}

PhExecution FleetExecutor::execute_ph(const workload::PhBatch& batch,
                                      SimTime now, const ExecOptions& options) {
  util::require(!batch.empty(), "FleetExecutor::execute_ph: empty batch");
  const std::size_t cells = workload::batch_cells(batch);
  PhExecution out;
  out.exec = dispatch(batch.size(), cells, /*is_sw=*/false, now,
                      [&](Worker& worker) {
                        kernels::PhRunOptions opt;
                        opt.engine = engine_;
                        opt.overlap_transfers = options.overlap_transfers;
                        if (options.collect_outputs) {
                          opt.collect_outputs = true;
                          opt.double_fallback = options.double_fallback;
                        } else {
                          opt.mode = simt::ExecMode::kCachedByShape;
                          opt.use_engine_cache = true;
                        }
                        out.result =
                            worker.ph_runner.run_batch(worker.cfg.device, batch, opt);
                        return out.result.run.launch.total_seconds();
                      });
  return out;
}

}  // namespace wsim::fleet
