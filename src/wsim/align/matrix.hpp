#pragma once

#include <cstddef>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::align {

/// Dense row-major matrix used for DP score/backtrace tables.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    util::require(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    util::require(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const noexcept { return data_; }
  std::vector<T>& data() noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace wsim::align
