#include "wsim/align/needleman_wunsch.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "wsim/align/matrix.hpp"

namespace wsim::align {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

std::int32_t gap_cost(const SwParams& params, std::size_t length) noexcept {
  return length == 0 ? 0
                     : params.gap_open +
                           static_cast<std::int32_t>(length - 1) * params.gap_extend;
}

enum class HFrom : std::uint8_t { kDiag, kVertical, kHorizontal };

}  // namespace

NwAlignment nw_align(std::string_view query, std::string_view target,
                     const SwParams& params) {
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  Matrix<std::int32_t> h(m + 1, n + 1, 0);
  Matrix<std::int32_t> e(m + 1, n + 1, kNegInf);  // horizontal (consumes target)
  Matrix<std::int32_t> f(m + 1, n + 1, kNegInf);  // vertical (consumes query)
  Matrix<HFrom> h_from(m + 1, n + 1, HFrom::kDiag);
  Matrix<std::uint8_t> e_extends(m + 1, n + 1, 0);
  Matrix<std::uint8_t> f_extends(m + 1, n + 1, 0);

  for (std::size_t j = 1; j <= n; ++j) {
    h(0, j) = gap_cost(params, j);
    e(0, j) = h(0, j);
    h_from(0, j) = HFrom::kHorizontal;
    e_extends(0, j) = j > 1 ? 1 : 0;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    h(i, 0) = gap_cost(params, i);
    f(i, 0) = h(i, 0);
    h_from(i, 0) = HFrom::kVertical;
    f_extends(i, 0) = i > 1 ? 1 : 0;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int32_t open_h = h(i, j - 1) + params.gap_open;
      const std::int32_t extend_h = e(i, j - 1) + params.gap_extend;
      if (extend_h > open_h) {
        e(i, j) = extend_h;
        e_extends(i, j) = 1;
      } else {
        e(i, j) = open_h;
      }
      const std::int32_t open_v = h(i - 1, j) + params.gap_open;
      const std::int32_t extend_v = f(i - 1, j) + params.gap_extend;
      if (extend_v > open_v) {
        f(i, j) = extend_v;
        f_extends(i, j) = 1;
      } else {
        f(i, j) = open_v;
      }
      const std::int32_t diag =
          h(i - 1, j - 1) + substitution_score(params, query[i - 1], target[j - 1]);
      // Precedence on ties: diagonal > vertical > horizontal.
      h(i, j) = diag;
      h_from(i, j) = HFrom::kDiag;
      if (f(i, j) > h(i, j)) {
        h(i, j) = f(i, j);
        h_from(i, j) = HFrom::kVertical;
      }
      if (e(i, j) > h(i, j)) {
        h(i, j) = e(i, j);
        h_from(i, j) = HFrom::kHorizontal;
      }
    }
  }

  NwAlignment result;
  result.score = h(m, n);

  std::vector<std::pair<char, std::size_t>> ops;
  auto push = [&ops](char op) {
    if (!ops.empty() && ops.back().first == op) {
      ++ops.back().second;
    } else {
      ops.emplace_back(op, 1);
    }
  };

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    if (i == 0) {
      push('D');
      --j;
      continue;
    }
    if (j == 0) {
      push('I');
      --i;
      continue;
    }
    switch (h_from(i, j)) {
      case HFrom::kDiag:
        push('M');
        --i;
        --j;
        break;
      case HFrom::kVertical:
        // Follow the F chain while it extends.
        while (f_extends(i, j) != 0 && i > 1) {
          push('I');
          --i;
        }
        push('I');
        --i;
        break;
      case HFrom::kHorizontal:
        while (e_extends(i, j) != 0 && j > 1) {
          push('D');
          --j;
        }
        push('D');
        --j;
        break;
    }
  }

  std::string cigar;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    cigar += std::to_string(it->second);
    cigar += it->first;
  }
  result.cigar = std::move(cigar);
  return result;
}

std::int32_t nw_score(std::string_view query, std::string_view target,
                      const SwParams& params) {
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  std::vector<std::int32_t> h(n + 1);
  std::vector<std::int32_t> f(n + 1, kNegInf);
  h[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h[j] = gap_cost(params, j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    std::int32_t diag_prev = h[0];  // H(i-1, 0)
    h[0] = gap_cost(params, i);
    std::int32_t e_row = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e_row = std::max(h[j - 1] + params.gap_open, e_row + params.gap_extend);
      f[j] = std::max(h[j] + params.gap_open, f[j] + params.gap_extend);
      const std::int32_t diag =
          diag_prev + substitution_score(params, query[i - 1], target[j - 1]);
      diag_prev = h[j];
      h[j] = std::max({diag, e_row, f[j]});
    }
  }
  return h[n];
}

}  // namespace wsim::align
