#include "wsim/align/smith_waterman.hpp"

#include <algorithm>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::align {

namespace {

/// Large negative sentinel that survives additions without wrapping.
constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

}  // namespace

SwFill sw_fill(std::string_view query, std::string_view target, const SwParams& params) {
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  SwFill fill;
  fill.h = Matrix<std::int32_t>(m + 1, n + 1, 0);
  fill.btrack = Matrix<std::int32_t>(m + 1, n + 1, kBtrackStop);

  // Per-column vertical-gap state (F of Gotoh's affine recurrence and the
  // running gap length), carried across rows.
  std::vector<std::int32_t> f(n + 1, kNegInf);
  std::vector<std::int32_t> kv(n + 1, 0);

  for (std::size_t i = 1; i <= m; ++i) {
    // Per-row horizontal-gap state.
    std::int32_t e = kNegInf;
    std::int32_t lh = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      // Horizontal gap: open from H(i, j-1) or extend E(i, j-1); prefer the
      // shorter gap (open) on ties.
      const std::int32_t open_h = fill.h(i, j - 1) + params.gap_open;
      const std::int32_t extend_h = e + params.gap_extend;
      if (extend_h > open_h) {
        e = extend_h;
        ++lh;
      } else {
        e = open_h;
        lh = 1;
      }
      // Vertical gap: open from H(i-1, j) or extend F(i-1, j).
      const std::int32_t open_v = fill.h(i - 1, j) + params.gap_open;
      const std::int32_t extend_v = f[j] + params.gap_extend;
      if (extend_v > open_v) {
        f[j] = extend_v;
        ++kv[j];
      } else {
        f[j] = open_v;
        kv[j] = 1;
      }

      const std::int32_t diag =
          fill.h(i - 1, j - 1) + substitution_score(params, query[i - 1], target[j - 1]);

      // Precedence on ties: diagonal > vertical > horizontal, then the
      // zero floor of Eq. 5.
      std::int32_t best = diag;
      std::int32_t bt = 0;
      if (f[j] > best) {
        best = f[j];
        bt = kv[j];
      }
      if (e > best) {
        best = e;
        bt = -lh;
      }
      if (best <= 0) {
        best = 0;
        bt = kBtrackStop;
      }
      fill.h(i, j) = best;
      fill.btrack(i, j) = bt;
    }
  }

  // HaplotypeCaller variant: best cell over the last column (top to
  // bottom) then the last row (left to right); strictly greater wins.
  fill.best_score = 0;
  fill.best_i = m;
  fill.best_j = n;
  if (m > 0 && n > 0) {
    for (std::size_t i = 1; i <= m; ++i) {
      if (fill.h(i, n) > fill.best_score) {
        fill.best_score = fill.h(i, n);
        fill.best_i = i;
        fill.best_j = n;
      }
    }
    for (std::size_t j = 1; j <= n; ++j) {
      if (fill.h(m, j) > fill.best_score) {
        fill.best_score = fill.h(m, j);
        fill.best_i = m;
        fill.best_j = j;
      }
    }
  }
  return fill;
}

SwAlignment sw_backtrace(const Matrix<std::int32_t>& btrack, std::size_t best_i,
                         std::size_t best_j, std::int32_t best_score) {
  util::require(best_i < btrack.rows() && best_j < btrack.cols(),
                "sw_backtrace: start cell out of range");
  SwAlignment result;
  result.score = best_score;
  result.query_end = best_i;
  result.target_end = best_j;

  // Collect (op, run) pairs walking backwards, then render forwards.
  std::vector<std::pair<char, std::size_t>> ops;
  auto push = [&ops](char op, std::size_t run) {
    if (run == 0) {
      return;
    }
    if (!ops.empty() && ops.back().first == op) {
      ops.back().second += run;
    } else {
      ops.emplace_back(op, run);
    }
  };

  std::size_t i = best_i;
  std::size_t j = best_j;
  while (i > 0 && j > 0) {
    const std::int32_t bt = btrack(i, j);
    if (bt == kBtrackStop) {
      break;
    }
    if (bt == 0) {
      push('M', 1);
      --i;
      --j;
    } else if (bt > 0) {
      const auto run = std::min<std::size_t>(static_cast<std::size_t>(bt), i);
      push('I', run);
      i -= run;
    } else {
      const auto run = std::min<std::size_t>(static_cast<std::size_t>(-bt), j);
      push('D', run);
      j -= run;
    }
  }
  result.query_begin = i;
  result.target_begin = j;

  std::string cigar;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    cigar += std::to_string(it->second);
    cigar += it->first;
  }
  result.cigar = std::move(cigar);
  return result;
}

SwAlignment sw_align(std::string_view query, std::string_view target,
                     const SwParams& params) {
  const SwFill fill = sw_fill(query, target, params);
  return sw_backtrace(fill.btrack, fill.best_i, fill.best_j, fill.best_score);
}

std::string cigar_with_softclips(const SwAlignment& alignment,
                                 std::size_t query_length) {
  util::require(alignment.query_end <= query_length,
                "cigar_with_softclips: alignment exceeds the query");
  std::string out;
  if (alignment.query_begin > 0) {
    out += std::to_string(alignment.query_begin);
    out += 'S';
  }
  out += alignment.cigar;
  if (alignment.query_end < query_length) {
    out += std::to_string(query_length - alignment.query_end);
    out += 'S';
  }
  return out;
}

}  // namespace wsim::align
