#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "wsim/align/scoring.hpp"

namespace wsim::align {

/// A completed global alignment (Needleman-Wunsch with affine gaps,
/// Gotoh's formulation). The paper lists NW alongside SW and PairHMM as
/// an algorithm with the same anti-diagonal dependence graph (Fig. 4); we
/// implement it as the library's extension case study. CIGAR conventions
/// match SwAlignment.
struct NwAlignment {
  std::int32_t score = 0;
  std::string cigar;
};

/// Global alignment of the full sequences. Either sequence may be empty
/// (the result is then a pure gap).
NwAlignment nw_align(std::string_view query, std::string_view target,
                     const SwParams& params);

/// Score only (linear memory); equals nw_align().score.
std::int32_t nw_score(std::string_view query, std::string_view target,
                      const SwParams& params);

}  // namespace wsim::align
