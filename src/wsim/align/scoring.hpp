#pragma once

#include <cstdint>

namespace wsim::align {

/// Affine-gap Smith-Waterman scoring scheme. Defaults are GATK
/// HaplotypeCaller's NEW_SW_PARAMETERS (used when aligning haplotypes to
/// the reference), matching the application the paper extracts its SW
/// kernel from. The gap-scoring arrays of the paper's Eq. 5 are
/// W_k = gap_open + (k - 1) * gap_extend with both penalties negative.
struct SwParams {
  std::int32_t match = 200;
  std::int32_t mismatch = -150;
  std::int32_t gap_open = -260;
  std::int32_t gap_extend = -11;
};

/// Substitution score s(a, b) of Eq. 5; 'N' bases never match.
std::int32_t substitution_score(const SwParams& params, char a, char b) noexcept;

/// Phred quality -> error probability 10^(-q/10).
float qual_to_error_prob(std::uint8_t qual) noexcept;

/// Phred quality -> 1 - error probability.
float qual_to_prob(std::uint8_t qual) noexcept;

/// PairHMM state-transition probabilities for one read position, derived
/// from the insertion quality, deletion quality, and gap-continuation
/// penalty as in GATK's PairHMMModel. In the paper's Eq. 6 notation:
/// mm = alpha, im = beta = gamma, mi = delta, ii = epsilon, md = zeta,
/// dd = mu.
struct Transitions {
  float mm = 0.0F;  ///< match -> match
  float im = 0.0F;  ///< insertion/deletion -> match (gap continuation complement)
  float mi = 0.0F;  ///< match -> insertion
  float ii = 0.0F;  ///< insertion -> insertion
  float md = 0.0F;  ///< match -> deletion
  float dd = 0.0F;  ///< deletion -> deletion
};

Transitions transitions_for(std::uint8_t ins_qual, std::uint8_t del_qual,
                            std::uint8_t gap_continuation_penalty) noexcept;

/// PairHMM scaling constant (GATK FloatPairHMM): 2^120, used as the
/// initial condition of the deletion row so f32 stays in range.
float pairhmm_initial_condition() noexcept;

}  // namespace wsim::align
