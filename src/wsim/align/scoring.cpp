#include "wsim/align/scoring.hpp"

#include <algorithm>
#include <cmath>

namespace wsim::align {

std::int32_t substitution_score(const SwParams& params, char a, char b) noexcept {
  if (a == 'N' || b == 'N') {
    return params.mismatch;
  }
  return a == b ? params.match : params.mismatch;
}

float qual_to_error_prob(std::uint8_t qual) noexcept {
  return std::pow(10.0F, -static_cast<float>(qual) / 10.0F);
}

float qual_to_prob(std::uint8_t qual) noexcept {
  return 1.0F - qual_to_error_prob(qual);
}

Transitions transitions_for(std::uint8_t ins_qual, std::uint8_t del_qual,
                            std::uint8_t gap_continuation_penalty) noexcept {
  Transitions t;
  const float ins_prob = qual_to_error_prob(ins_qual);
  const float del_prob = qual_to_error_prob(del_qual);
  const float gcp_prob = qual_to_error_prob(gap_continuation_penalty);
  t.mm = 1.0F - std::min(ins_prob + del_prob, 1.0F);
  t.im = 1.0F - gcp_prob;
  t.mi = ins_prob;
  t.ii = gcp_prob;
  t.md = del_prob;
  t.dd = gcp_prob;
  return t;
}

float pairhmm_initial_condition() noexcept {
  return std::ldexp(1.0F, 120);
}

}  // namespace wsim::align
