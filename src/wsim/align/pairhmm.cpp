#include "wsim/align/pairhmm.hpp"

#include <cmath>

#include "wsim/util/check.hpp"

namespace wsim::align {

void validate(const PairHmmTask& task) {
  util::require(!task.read.empty(), "PairHmmTask: read must be non-empty");
  util::require(!task.hap.empty(), "PairHmmTask: haplotype must be non-empty");
  util::require(task.base_quals.size() == task.read.size(),
                "PairHmmTask: base_quals length must match the read");
  util::require(task.ins_quals.size() == task.read.size(),
                "PairHmmTask: ins_quals length must match the read");
  util::require(task.del_quals.size() == task.read.size(),
                "PairHmmTask: del_quals length must match the read");
}

PairHmmFill pairhmm_fill(const PairHmmTask& task) {
  validate(task);
  const std::size_t rows = task.read.size();
  const std::size_t cols = task.hap.size();
  PairHmmFill fill;
  fill.m = Matrix<float>(rows + 1, cols + 1, 0.0F);
  fill.i = Matrix<float>(rows + 1, cols + 1, 0.0F);
  fill.d = Matrix<float>(rows + 1, cols + 1, 0.0F);

  // Row 0: the read can start its alignment anywhere along the haplotype,
  // expressed by seeding the deletion state with IC / |hap|.
  const float initial = pairhmm_initial_condition() / static_cast<float>(cols);
  for (std::size_t j = 0; j <= cols; ++j) {
    fill.d(0, j) = initial;
  }

  for (std::size_t i = 1; i <= rows; ++i) {
    const Transitions t = transitions_for(task.ins_quals[i - 1], task.del_quals[i - 1],
                                          task.gcp);
    const char read_base = task.read[i - 1];
    const float err = qual_to_error_prob(task.base_quals[i - 1]);
    const float prior_match = 1.0F - err;
    const float prior_mismatch = err / 3.0F;
    for (std::size_t j = 1; j <= cols; ++j) {
      const char hap_base = task.hap[j - 1];
      const bool match = read_base == hap_base || read_base == 'N' || hap_base == 'N';
      const float prior = match ? prior_match : prior_mismatch;
      fill.m(i, j) = prior * (fill.m(i - 1, j - 1) * t.mm +
                              (fill.i(i - 1, j - 1) + fill.d(i - 1, j - 1)) * t.im);
      fill.i(i, j) = fill.m(i - 1, j) * t.mi + fill.i(i - 1, j) * t.ii;
      fill.d(i, j) = fill.m(i, j - 1) * t.md + fill.d(i, j - 1) * t.dd;
    }
  }
  return fill;
}

double pairhmm_log10_from_fill(const PairHmmFill& fill) {
  const std::size_t rows = fill.m.rows() - 1;
  const std::size_t cols = fill.m.cols() - 1;
  float sum = 0.0F;
  for (std::size_t j = 1; j <= cols; ++j) {
    sum += fill.m(rows, j) + fill.i(rows, j);
  }
  util::ensure(sum > 0.0F, "pairhmm: likelihood underflowed to zero");
  return std::log10(static_cast<double>(sum)) -
         std::log10(static_cast<double>(pairhmm_initial_condition()));
}

double pairhmm_log10(const PairHmmTask& task) {
  return pairhmm_log10_from_fill(pairhmm_fill(task));
}

double pairhmm_log10_double(const PairHmmTask& task) {
  validate(task);
  const std::size_t rows = task.read.size();
  const std::size_t cols = task.hap.size();
  // Double has enough range that no scaling constant is needed; GATK's
  // double path seeds the deletion row with 1 / |hap| directly.
  const double initial = 1.0 / static_cast<double>(cols);
  std::vector<double> m_prev(cols + 1, 0.0);
  std::vector<double> i_prev(cols + 1, 0.0);
  std::vector<double> d_prev(cols + 1, initial);
  std::vector<double> m_cur(cols + 1, 0.0);
  std::vector<double> i_cur(cols + 1, 0.0);
  std::vector<double> d_cur(cols + 1, 0.0);

  for (std::size_t i = 1; i <= rows; ++i) {
    const Transitions t = transitions_for(task.ins_quals[i - 1], task.del_quals[i - 1],
                                          task.gcp);
    const char read_base = task.read[i - 1];
    const double err = qual_to_error_prob(task.base_quals[i - 1]);
    m_cur[0] = 0.0;
    i_cur[0] = 0.0;
    d_cur[0] = 0.0;
    for (std::size_t j = 1; j <= cols; ++j) {
      const char hap_base = task.hap[j - 1];
      const bool match = read_base == hap_base || read_base == 'N' || hap_base == 'N';
      const double prior = match ? 1.0 - err : err / 3.0;
      m_cur[j] = prior * (m_prev[j - 1] * t.mm + (i_prev[j - 1] + d_prev[j - 1]) * t.im);
      i_cur[j] = m_prev[j] * t.mi + i_prev[j] * t.ii;
      d_cur[j] = m_cur[j - 1] * t.md + d_cur[j - 1] * t.dd;
    }
    std::swap(m_prev, m_cur);
    std::swap(i_prev, i_cur);
    std::swap(d_prev, d_cur);
  }
  double sum = 0.0;
  for (std::size_t j = 1; j <= cols; ++j) {
    sum += m_prev[j] + i_prev[j];
  }
  util::ensure(sum > 0.0, "pairhmm_log10_double: likelihood underflowed");
  return std::log10(sum);
}

double pairhmm_log10_safe(const PairHmmTask& task) {
  const PairHmmFill fill = pairhmm_fill(task);
  const std::size_t rows = fill.m.rows() - 1;
  const std::size_t cols = fill.m.cols() - 1;
  float sum = 0.0F;
  for (std::size_t j = 1; j <= cols; ++j) {
    sum += fill.m(rows, j) + fill.i(rows, j);
  }
  if (sum > 0.0F) {
    return std::log10(static_cast<double>(sum)) -
           std::log10(static_cast<double>(pairhmm_initial_condition()));
  }
  return pairhmm_log10_double(task);
}

}  // namespace wsim::align
