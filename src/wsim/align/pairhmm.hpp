#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wsim/align/matrix.hpp"
#include "wsim/align/scoring.hpp"

namespace wsim::align {

/// One PairHMM alignment task as HaplotypeCaller produces it: a read with
/// its three quality tracks, and a candidate haplotype. The result is the
/// log10 likelihood that the read was sampled from the haplotype.
struct PairHmmTask {
  std::string read;
  std::vector<std::uint8_t> base_quals;
  std::vector<std::uint8_t> ins_quals;
  std::vector<std::uint8_t> del_quals;
  std::uint8_t gcp = 10;  ///< gap-continuation penalty (GATK default)
  std::string hap;
};

/// Structural validation of a task (matching track lengths, non-empty
/// sequences). Throws util::CheckError on violations.
void validate(const PairHmmTask& task);

/// Filled match/insertion/deletion matrices of Eq. 6,
/// (|read|+1) x (|hap|+1), computed in f32 exactly as the GPU kernels do
/// so cells can be compared one-to-one.
struct PairHmmFill {
  Matrix<float> m;
  Matrix<float> i;
  Matrix<float> d;
};

PairHmmFill pairhmm_fill(const PairHmmTask& task);

/// Likelihood from a filled DP: log10(sum over the last row of M + I)
/// minus the scaling constant's log10. (GATK convention; the paper's
/// prose says I + D, see EXPERIMENTS.md.)
double pairhmm_log10_from_fill(const PairHmmFill& fill);

/// Forward algorithm: fill + reduce. Throws util::CheckError when the f32
/// forward sum underflows to zero (see pairhmm_log10_safe).
double pairhmm_log10(const PairHmmTask& task);

/// Double-precision forward algorithm: the fallback path GATK's PairHMM
/// takes when the float computation underflows (very long or very
/// mismatched reads).
double pairhmm_log10_double(const PairHmmTask& task);

/// GATK semantics: compute in f32 and fall back to double on underflow.
/// Never throws for valid tasks.
double pairhmm_log10_safe(const PairHmmTask& task);

}  // namespace wsim::align
