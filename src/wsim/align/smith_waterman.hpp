#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "wsim/align/matrix.hpp"
#include "wsim/align/scoring.hpp"

namespace wsim::align {

/// Backtrace marker for cells where the zero floor of Eq. 5 was taken:
/// a local alignment ends when the trace reaches such a cell.
inline constexpr std::int32_t kBtrackStop = std::numeric_limits<std::int32_t>::min();

/// Filled DP state of GATK-style Smith-Waterman: the score matrix H of
/// Eq. 5 and the backtrace matrix using GATK's run-length encoding —
/// 0 = diagonal, +k = vertical gap of length k (consumes the query),
/// -l = horizontal gap of length l (consumes the target), kBtrackStop =
/// zero floor. Matrices are (|query|+1) x (|target|+1); row and column 0
/// are DP boundaries. As in the paper's HaplotypeCaller variant, the best
/// cell is searched over the last row and last column only.
struct SwFill {
  Matrix<std::int32_t> h;
  Matrix<std::int32_t> btrack;
  std::int32_t best_score = 0;
  std::size_t best_i = 0;  ///< row of the best cell (1-based DP index)
  std::size_t best_j = 0;  ///< column of the best cell
};

/// Runs the forward DP (no backtrace).
SwFill sw_fill(std::string_view query, std::string_view target, const SwParams& params);

/// A completed local alignment. CIGAR operations are relative to the
/// query: M = match/mismatch, I = query-only base (vertical move),
/// D = target-only base (horizontal move). *_begin/*_end are 0-based
/// half-open coordinates of the aligned span.
struct SwAlignment {
  std::int32_t score = 0;
  std::string cigar;
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  std::size_t target_begin = 0;
  std::size_t target_end = 0;
};

/// Walks the backtrace matrix from (best_i, best_j). Exposed separately so
/// the GPU kernels' device-produced btrack matrices can be traced with the
/// same code path.
SwAlignment sw_backtrace(const Matrix<std::int32_t>& btrack, std::size_t best_i,
                         std::size_t best_j, std::int32_t best_score);

/// Fill + backtrace in one call (the host reference implementation).
SwAlignment sw_align(std::string_view query, std::string_view target,
                     const SwParams& params);

/// GATK-style CIGAR with soft clips: query bases outside the aligned span
/// are reported as 'S' operations (SWOverhangStrategy::SOFTCLIP), e.g.
/// "2S5M1S" for a 8-base query aligned over [2, 7).
std::string cigar_with_softclips(const SwAlignment& alignment,
                                 std::size_t query_length);

}  // namespace wsim::align
