#pragma once

#include <string>

#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/isa.hpp"

namespace wsim::simt {

/// Post-mortem profile of one executed block: where the issue slots and
/// the estimated latency went, plus the occupancy context. This is the
/// simulator's analogue of nvprof's per-kernel summary and what the
/// paper's trade-off analysis reads off its kernels.
struct ProfileReport {
  std::string kernel_name;
  int threads_per_block = 0;
  int regs_per_thread = 0;
  int smem_bytes = 0;
  double occupancy = 0.0;
  std::string occupancy_limiter;

  long long cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;  ///< warp instructions per cycle

  std::uint64_t alu_ops = 0;
  std::uint64_t shuffle_ops = 0;
  std::uint64_t smem_ops = 0;
  std::uint64_t gmem_ops = 0;
  std::uint64_t barriers = 0;
  std::uint64_t smem_transactions = 0;
  std::uint64_t gmem_transactions = 0;
  double bank_conflict_ratio = 0.0;  ///< transactions per smem instruction

  std::size_t cells = 0;
  double instructions_per_cell = 0.0;
  double cycles_per_cell = 0.0;
};

/// Builds the report from a kernel, its device, and one block's result.
ProfileReport profile_block(const Kernel& kernel, const DeviceSpec& device,
                            const BlockResult& block, std::size_t cells);

/// Renders the report as an aligned, human-readable summary.
std::string format_profile(const ProfileReport& report);

}  // namespace wsim::simt
