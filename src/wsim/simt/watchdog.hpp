#pragma once

#include <string>

#include "wsim/util/check.hpp"

namespace wsim::simt {

/// Structured error for kernels the watchdog gave up on. Derives from
/// util::CheckError so existing catch sites keep working; the fleet layer
/// treats it as a retryable execution failure (requeue the batch, feed the
/// device's health record) rather than a programming error.
///
/// Two triggers:
///  * kCycleBudget — a block's makespan exceeded LaunchOptions::
///    max_block_cycles (a runaway or pathologically slow kernel).
///  * kBarrierDeadlock — warps can never join at a __syncthreads: some
///    warps ran to completion while others wait, or warps wait at
///    different barriers (divergent __syncthreads, undefined behaviour
///    that hangs real hardware).
class LaunchTimeout : public util::CheckError {
 public:
  enum class Kind { kCycleBudget, kBarrierDeadlock };

  LaunchTimeout(Kind kind, const std::string& message, long long cycles = 0,
                long long budget = 0)
      : util::CheckError(message), kind_(kind), cycles_(cycles), budget_(budget) {}

  Kind kind() const noexcept { return kind_; }
  /// Cycle the watchdog fired at (kCycleBudget) or the blocked warps'
  /// latest cursor (kBarrierDeadlock).
  long long cycles() const noexcept { return cycles_; }
  /// The configured budget; 0 when no budget was set (deadlocks are
  /// detected regardless).
  long long budget() const noexcept { return budget_; }

 private:
  Kind kind_;
  long long cycles_;
  long long budget_;
};

}  // namespace wsim::simt
