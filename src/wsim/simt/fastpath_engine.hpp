#pragma once

// Shared execution core of the predecoded interpreters (see decode.hpp).
//
// EngineBase is the CRTP base both engines in front of the DecodedProgram
// stream derive from:
//
//   * FastEngine (fastpath.cpp) — per-opcode scalar handler dispatch with
//     superinstruction fusion; the reference fast path.
//   * VectorEngine (vectorpath.cpp) — lane-vector execution: all 32 lanes
//     of an unpredicated instruction in a handful of SIMD ops, falling
//     back to the scalar handlers here for divergent (predicated) work.
//
// Everything timing- or semantics-bearing lives in the base so the two
// engines cannot drift: the warp state, the scoreboard bookkeeping
// (issue_start/finish), the memory models (exec_smem/exec_gmem), the
// barrier rendezvous in run(), SDC injection, and the scalar handler
// tables. A derived engine customizes dispatch only, by shadowing
// run_until_barrier; run() calls it through the CRTP downcast.
//
// The contract, enforced by interp_equivalence_test: functional outputs,
// every BlockResult counter, SDC write-event numbering, trace contents,
// and the error surface (messages included) are bit-identical to the
// legacy BlockEngine in interpreter.cpp. Any change here must preserve
// the legacy path's exact operation order per warp; warps still execute
// sequentially in warp order between barriers.

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "wsim/simt/decode.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/simt/trace.hpp"
#include "wsim/simt/watchdog.hpp"
#include "wsim/util/check.hpp"

namespace wsim::simt::fastdetail {

constexpr int kWarpSize = 32;
/// Cycles lost to the taken backward branch closing each loop iteration
/// (must match the legacy interpreter's constant).
constexpr long long kBranchCycles = 2;

inline float as_f32(std::uint64_t bits) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

inline std::uint64_t from_f32(float value) noexcept {
  return std::bit_cast<std::uint32_t>(value);
}

inline std::int64_t as_i64(std::uint64_t bits) noexcept {
  return static_cast<std::int64_t>(bits);
}

inline std::uint64_t from_i64(std::int64_t value) noexcept {
  return static_cast<std::uint64_t>(value);
}

inline std::uint64_t load_bits(const std::uint8_t* src, MemWidth width) noexcept {
  if (width == MemWidth::kB1) {
    return *src;
  }
  std::int32_t word = 0;
  std::memcpy(&word, src, 4);
  return from_i64(word);
}

template <typename T>
bool compare(Cmp cmp, T x, T y) noexcept {
  switch (cmp) {
    case Cmp::kLt: return x < y;
    case Cmp::kLe: return x <= y;
    case Cmp::kGt: return x > y;
    case Cmp::kGe: return x >= y;
    case Cmp::kEq: return x == y;
    case Cmp::kNe: return x != y;
  }
  return false;
}

/// Resolved operand: per-lane pointer for vector registers, broadcast
/// value for scalars/immediates — replaces the legacy per-lane kind
/// switch with one predictable branch.
struct Ref {
  const std::uint64_t* lanes = nullptr;
  std::uint64_t broadcast = 0;

  std::uint64_t value(int lane) const noexcept {
    return lanes != nullptr ? lanes[static_cast<std::size_t>(lane)] : broadcast;
  }
};

/// The per-lane pure computation of one ExecClass::kSimple op, selected at
/// compile time so the lane loop it sits in contains no opcode switch.
template <LaneOp L>
std::uint64_t lane_apply(const Ref& ra, const Ref& rb, const Ref& rc, Cmp cmp,
                         int base_tid, int warp_index, int lane) noexcept {
  [[maybe_unused]] const std::uint64_t a = ra.value(lane);
  [[maybe_unused]] const std::uint64_t b = rb.value(lane);
  [[maybe_unused]] const std::uint64_t c = rc.value(lane);
  if constexpr (L == LaneOp::kMov) {
    return a;
  } else if constexpr (L == LaneOp::kTid) {
    return from_i64(base_tid + lane);
  } else if constexpr (L == LaneOp::kLaneId) {
    return from_i64(lane);
  } else if constexpr (L == LaneOp::kWarpId) {
    return from_i64(warp_index);
  } else if constexpr (L == LaneOp::kFAdd) {
    return from_f32(as_f32(a) + as_f32(b));
  } else if constexpr (L == LaneOp::kFSub) {
    return from_f32(as_f32(a) - as_f32(b));
  } else if constexpr (L == LaneOp::kFMul) {
    return from_f32(as_f32(a) * as_f32(b));
  } else if constexpr (L == LaneOp::kFFma) {
    return from_f32(as_f32(a) * as_f32(b) + as_f32(c));
  } else if constexpr (L == LaneOp::kFMax) {
    return from_f32(std::max(as_f32(a), as_f32(b)));
  } else if constexpr (L == LaneOp::kFMin) {
    return from_f32(std::min(as_f32(a), as_f32(b)));
  } else if constexpr (L == LaneOp::kIAdd) {
    return from_i64(as_i64(a) + as_i64(b));
  } else if constexpr (L == LaneOp::kISub) {
    return from_i64(as_i64(a) - as_i64(b));
  } else if constexpr (L == LaneOp::kIMul) {
    return from_i64(as_i64(a) * as_i64(b));
  } else if constexpr (L == LaneOp::kIMax) {
    return from_i64(std::max(as_i64(a), as_i64(b)));
  } else if constexpr (L == LaneOp::kIMin) {
    return from_i64(std::min(as_i64(a), as_i64(b)));
  } else if constexpr (L == LaneOp::kIAnd) {
    return a & b;
  } else if constexpr (L == LaneOp::kIOr) {
    return a | b;
  } else if constexpr (L == LaneOp::kIXor) {
    return a ^ b;
  } else if constexpr (L == LaneOp::kShl) {
    return from_i64(as_i64(a) << (as_i64(b) & 63));
  } else if constexpr (L == LaneOp::kShr) {
    return from_i64(as_i64(a) >> (as_i64(b) & 63));
  } else if constexpr (L == LaneOp::kSetpF32) {
    return compare(cmp, as_f32(a), as_f32(b)) ? 1 : 0;
  } else if constexpr (L == LaneOp::kSetpI64) {
    return compare(cmp, as_i64(a), as_i64(b)) ? 1 : 0;
  } else if constexpr (L == LaneOp::kSelp) {
    return (c != 0) ? a : b;
  } else {
    return 0;  // LaneOp::kNop — callers never write this
  }
}

template <class Derived>
struct EngineBase {
  /// Per-warp execution state; registers live in one flat per-warp array
  /// (reg * 32 + lane) so handler lane loops walk contiguous memory — and
  /// so the vector engine can load a register's 32 lanes as four (or two)
  /// full-width SIMD vectors.
  struct Warp {
    int warp_index = 0;
    std::size_t pc = 0;
    long long cursor = 0;         ///< next issue cycle
    long long cur_cycle = -1;     ///< cycle of the current issue group
    int issued_this_cycle = 0;    ///< instructions issued in cur_cycle
    long long last_complete = 0;  ///< completion time of the latest instruction
    std::vector<std::uint64_t> v;
    std::vector<long long> vready;
    std::vector<std::uint64_t> s;
    std::vector<long long> sready;
    struct LoopFrame {
      std::size_t begin_pc;
      std::int64_t remaining;
    };
    std::vector<LoopFrame> loops;
    bool at_barrier = false;
    std::size_t barrier_pc = 0;
    bool done = false;
  };

  EngineBase(const DecodedProgram& prog, const DeviceSpec& device, GlobalMemory& gmem,
             std::span<const std::uint64_t> scalar_args, const BlockRunOptions& options)
      : prog_(prog),
        dev_(device),
        gmem_(gmem),
        trace_(options.trace),
        writes_(options.writes),
        sdc_(options.sdc != nullptr && options.sdc->enabled() ? options.sdc : nullptr),
        sdc_stream_(options.sdc_stream),
        max_cycles_(options.max_cycles),
        // Fused lane-interleaved loops reorder per-lane write events across
        // the group's constituents; under SDC injection that would renumber
        // events, so fused groups fall back to constituent-at-a-time
        // execution (still on the decoded form).
        use_fused_(sdc_ == nullptr) {
    smem_.assign(static_cast<std::size_t>(prog.smem_bytes), 0);
    warps_.resize(static_cast<std::size_t>(prog.warps));
    for (int w = 0; w < prog.warps; ++w) {
      Warp& warp = warps_[static_cast<std::size_t>(w)];
      warp.warp_index = w;
      warp.v.assign(static_cast<std::size_t>(prog.vreg_count) * kWarpSize, 0);
      warp.vready.assign(static_cast<std::size_t>(prog.vreg_count), 0);
      warp.s.assign(static_cast<std::size_t>(prog.sreg_count), 0);
      warp.sready.assign(warp.s.size(), 0);
      for (std::size_t i = 0; i < scalar_args.size() && i < warp.s.size(); ++i) {
        warp.s[i] = scalar_args[i];
      }
    }
  }

  Derived& derived() noexcept { return static_cast<Derived&>(*this); }

  BlockResult run() {
    while (true) {
      bool any_running = false;
      for (Warp& warp : warps_) {
        if (!warp.done && !warp.at_barrier) {
          derived().run_until_barrier(warp);
          any_running = true;
        }
      }
      if (!any_running) {
        break;
      }
      const bool all_done =
          std::all_of(warps_.begin(), warps_.end(), [](const Warp& w) { return w.done; });
      if (all_done) {
        break;
      }
      const bool any_barrier = std::any_of(warps_.begin(), warps_.end(),
                                           [](const Warp& w) { return w.at_barrier; });
      if (any_barrier) {
        bool any_done = false;
        bool divergent = false;
        bool have_pc = false;
        std::size_t join_pc = 0;
        long long waited = 0;
        for (const Warp& warp : warps_) {
          if (warp.done) {
            any_done = true;
          } else if (warp.at_barrier) {
            waited = std::max(waited, warp.cursor);
            if (!have_pc) {
              join_pc = warp.barrier_pc;
              have_pc = true;
            } else if (warp.barrier_pc != join_pc) {
              divergent = true;
            }
          }
        }
        if (any_done || divergent) {
          throw LaunchTimeout(
              LaunchTimeout::Kind::kBarrierDeadlock,
              "barrier deadlock in kernel " + prog_.name + ": " +
                  (any_done
                       ? "some warps finished while others wait at __syncthreads"
                       : "warps wait at different __syncthreads"),
              waited, max_cycles_);
        }
        long long arrival = 0;
        for (const Warp& warp : warps_) {
          arrival = std::max(arrival, warp.cursor);
        }
        const long long released = arrival + dev_.lat.sync_barrier;
        for (Warp& warp : warps_) {
          if (!warp.done) {
            if (trace_ != nullptr) {
              trace_->add({"bar.sync", warp.warp_index, warp.cursor, released});
            }
            warp.cursor = released;
            warp.last_complete = std::max(warp.last_complete, released);
            warp.at_barrier = false;
          }
        }
        result_.barriers += 1;
      }
    }
    for (const Warp& warp : warps_) {
      result_.cycles = std::max(result_.cycles, std::max(warp.cursor, warp.last_complete));
    }
    check_budget(result_.cycles);
    return result_;
  }

  // --- operand access -------------------------------------------------------
  Ref ref(const Warp& warp, const Operand& operand) const noexcept {
    switch (operand.kind) {
      case Operand::Kind::kVector:
        return {&warp.v[static_cast<std::size_t>(operand.reg) * kWarpSize], 0};
      case Operand::Kind::kScalar:
        return {nullptr, warp.s[static_cast<std::size_t>(operand.reg)]};
      case Operand::Kind::kImmediate:
        return {nullptr, operand.imm};
      case Operand::Kind::kNone:
        break;
    }
    return {};
  }

  std::uint64_t scalar_operand(const Warp& warp, const Operand& operand) const {
    util::ensure(operand.kind != Operand::Kind::kVector,
                 "interpreter: vector operand in scalar context");
    if (operand.kind == Operand::Kind::kScalar) {
      return warp.s[static_cast<std::size_t>(operand.reg)];
    }
    return operand.kind == Operand::Kind::kImmediate ? operand.imm : 0;
  }

  const std::uint64_t* pred_lanes(const Warp& warp, const DecodedInstr& d) const noexcept {
    return d.pred >= 0 ? &warp.v[static_cast<std::size_t>(d.pred) * kWarpSize] : nullptr;
  }

  static bool lane_active(const std::uint64_t* pv, bool negate, int lane) noexcept {
    if (pv == nullptr) {
      return true;
    }
    const bool p = pv[static_cast<std::size_t>(lane)] != 0;
    return negate ? !p : p;
  }

  // --- timing (identical to the legacy step()'s bookkeeping) ---------------
  long long issue_start(const Warp& warp, const DecodedInstr& d) const noexcept {
    long long start = warp.cursor;
    for (const std::int16_t r : d.rv) {
      if (r >= 0) {
        start = std::max(start, warp.vready[static_cast<std::size_t>(r)]);
      }
    }
    for (const std::int16_t r : d.rs) {
      if (r >= 0) {
        start = std::max(start, warp.sready[static_cast<std::size_t>(r)]);
      }
    }
    return start;
  }

  void finish(Warp& warp, const DecodedInstr& d, long long start, long long latency) {
    const long long complete = start + latency;
    if (d.dst >= 0) {
      if (d.scalar_dst) {
        warp.sready[static_cast<std::size_t>(d.dst)] = complete;
      } else {
        warp.vready[static_cast<std::size_t>(d.dst)] = complete;
      }
    }
    warp.last_complete = std::max(warp.last_complete, complete);
    if (trace_ != nullptr) {
      trace_->add({std::string(to_string(d.op)), warp.warp_index, start, complete});
    }
    if (start > warp.cur_cycle) {
      warp.cur_cycle = start;
      warp.issued_this_cycle = 1;
    } else {
      ++warp.issued_this_cycle;
    }
    warp.cursor = warp.issued_this_cycle >= dev_.lat.issues_per_cycle
                      ? warp.cur_cycle + dev_.lat.issue_interval
                      : warp.cur_cycle;
    check_budget(std::max(warp.cursor, warp.last_complete));
  }

  void check_budget(long long cycles) const {
    if (max_cycles_ > 0 && cycles > max_cycles_) {
      throw LaunchTimeout(LaunchTimeout::Kind::kCycleBudget,
                          "cycle budget exceeded in kernel " + prog_.name + ": " +
                              std::to_string(cycles) + " > " +
                              std::to_string(max_cycles_) + " cycles",
                          cycles, max_cycles_);
    }
  }

  void count_issue(const DecodedInstr& d) {
    result_.instructions += 1;
    result_.op_counts[static_cast<std::size_t>(d.op)] += 1;
  }

  std::uint64_t maybe_corrupt(std::uint64_t value, SdcSite site) {
    if (sdc_ == nullptr) {
      return value;
    }
    int bit = 0;
    if (sdc_->flips(sdc_stream_, sdc_events_++, site, &bit)) {
      result_.sdc_flips += 1;
      value ^= std::uint64_t{1} << bit;
    }
    return value;
  }

  // --- per-class handlers ---------------------------------------------------
  template <LaneOp L, bool Pred>
  static void exec_simple(EngineBase& e, Warp& warp, const DecodedInstr& d) {
    if constexpr (L == LaneOp::kNop) {
      (void)e;
      (void)warp;
      (void)d;
      return;  // issues and completes, writes nothing
    } else {
      const Ref a = e.ref(warp, d.a);
      const Ref b = e.ref(warp, d.b);
      const Ref c = e.ref(warp, d.c);
      const int base_tid = warp.warp_index * kWarpSize;
      std::uint64_t* dst = &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize];
      [[maybe_unused]] const std::uint64_t* pv = nullptr;
      if constexpr (Pred) {
        pv = &warp.v[static_cast<std::size_t>(d.pred) * kWarpSize];
      }
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if constexpr (Pred) {
          const bool p = pv[static_cast<std::size_t>(lane)] != 0;
          if (d.pred_negate ? p : !p) {
            continue;
          }
        }
        dst[static_cast<std::size_t>(lane)] = e.maybe_corrupt(
            lane_apply<L>(a, b, c, d.cmp, base_tid, warp.warp_index, lane),
            SdcSite::kRegWrite);
      }
    }
  }

  /// Fused superinstruction: two unpredicated per-lane-pure ops in one
  /// lane loop. Values forward through the register file (dst1 is written
  /// before the second op's operands are read in the same lane), which is
  /// order-equivalent to back-to-back execution because each constituent
  /// touches only its own lane.
  template <LaneOp A, LaneOp B>
  static void exec_fused_pair(EngineBase& e, Warp& warp, const DecodedInstr& d1,
                              const DecodedInstr& d2) {
    e.count_issue(d1);
    const long long start1 = e.issue_start(warp, d1);
    const Ref a1 = e.ref(warp, d1.a);
    const Ref b1 = e.ref(warp, d1.b);
    const Ref c1 = e.ref(warp, d1.c);
    const Ref a2 = e.ref(warp, d2.a);
    const Ref b2 = e.ref(warp, d2.b);
    const Ref c2 = e.ref(warp, d2.c);
    const int base_tid = warp.warp_index * kWarpSize;
    std::uint64_t* dst1 = &warp.v[static_cast<std::size_t>(d1.dst) * kWarpSize];
    std::uint64_t* dst2 = &warp.v[static_cast<std::size_t>(d2.dst) * kWarpSize];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      dst1[static_cast<std::size_t>(lane)] =
          lane_apply<A>(a1, b1, c1, d1.cmp, base_tid, warp.warp_index, lane);
      dst2[static_cast<std::size_t>(lane)] =
          lane_apply<B>(a2, b2, c2, d2.cmp, base_tid, warp.warp_index, lane);
    }
    e.finish(warp, d1, start1, d1.latency);
    e.count_issue(d2);
    const long long start2 = e.issue_start(warp, d2);
    e.finish(warp, d2, start2, d2.latency);
  }

  /// Fused shuffle → consumer (→ mov) wavefront update. The shuffle's 32
  /// source lanes are pre-read exactly like the legacy path, then the
  /// whole group runs in one lane loop.
  template <LaneOp B, bool HasMov>
  static void exec_fused_shfl(EngineBase& e, Warp& warp, const DecodedInstr* g) {
    const DecodedInstr& d1 = g[0];
    const DecodedInstr& d2 = g[1];
    e.count_issue(d1);
    const long long start1 = e.issue_start(warp, d1);

    const Ref a1 = e.ref(warp, d1.a);
    const Ref b1 = e.ref(warp, d1.b);
    const Ref c1 = e.ref(warp, d1.c);
    const auto width = static_cast<int>(as_i64(c1.value(0)));
    util::require(width > 0 && width <= kWarpSize && (width & (width - 1)) == 0,
                  "shuffle width must be a power of two in [1, 32]");
    std::array<std::uint64_t, kWarpSize> source{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      source[static_cast<std::size_t>(lane)] = a1.value(lane);
    }

    const Ref a2 = e.ref(warp, d2.a);
    const Ref b2 = e.ref(warp, d2.b);
    const Ref c2 = e.ref(warp, d2.c);
    const int base_tid = warp.warp_index * kWarpSize;
    std::uint64_t* dst1 = &warp.v[static_cast<std::size_t>(d1.dst) * kWarpSize];
    std::uint64_t* dst2 = &warp.v[static_cast<std::size_t>(d2.dst) * kWarpSize];
    [[maybe_unused]] Ref a3;
    [[maybe_unused]] std::uint64_t* dst3 = nullptr;
    if constexpr (HasMov) {
      a3 = e.ref(warp, g[2].a);
      dst3 = &warp.v[static_cast<std::size_t>(g[2].dst) * kWarpSize];
    }
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const int src = shuffle_source(d1.op, lane, width,
                                     static_cast<int>(as_i64(b1.value(lane))));
      dst1[static_cast<std::size_t>(lane)] = source[static_cast<std::size_t>(src)];
      dst2[static_cast<std::size_t>(lane)] =
          lane_apply<B>(a2, b2, c2, d2.cmp, base_tid, warp.warp_index, lane);
      if constexpr (HasMov) {
        dst3[static_cast<std::size_t>(lane)] = a3.value(lane);
      }
    }

    e.finish(warp, d1, start1, d1.latency);
    e.count_issue(d2);
    const long long start2 = e.issue_start(warp, d2);
    e.finish(warp, d2, start2, d2.latency);
    if constexpr (HasMov) {
      e.count_issue(g[2]);
      const long long start3 = e.issue_start(warp, g[2]);
      e.finish(warp, g[2], start3, g[2].latency);
    }
  }

  /// Source-lane selection shared by the fused and generic shuffle
  /// handlers; mirrors the legacy exec_shuffle case for each variant.
  static int shuffle_source(Op op, int lane, int width, int arg) noexcept {
    const int base = lane & ~(width - 1);
    int src = lane;
    switch (op) {
      case Op::kShfl: {
        int idx = arg % width;
        if (idx < 0) {
          idx += width;
        }
        src = base + idx;
        break;
      }
      case Op::kShflUp:
        if ((lane - base) >= arg && arg >= 0) {
          src = lane - arg;
        }
        break;
      case Op::kShflDown:
        if ((lane - base) + arg < width && arg >= 0) {
          src = lane + arg;
        }
        break;
      case Op::kShflXor: {
        const int target = lane ^ arg;
        if (target >= base && target < base + width) {
          src = target;
        }
        break;
      }
      default:
        break;
    }
    return src;
  }

  void exec_shuffle(Warp& warp, const DecodedInstr& d) {
    const Ref a = ref(warp, d.a);
    const Ref b = ref(warp, d.b);
    const Ref c = ref(warp, d.c);
    const auto width = static_cast<int>(as_i64(c.value(0)));
    util::require(width > 0 && width <= kWarpSize && (width & (width - 1)) == 0,
                  "shuffle width must be a power of two in [1, 32]");
    std::array<std::uint64_t, kWarpSize> source{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      source[static_cast<std::size_t>(lane)] = a.value(lane);
    }
    const std::uint64_t* pv = pred_lanes(warp, d);
    std::uint64_t* dst = &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(pv, d.pred_negate, lane)) {
        continue;
      }
      const int src =
          shuffle_source(d.op, lane, width, static_cast<int>(as_i64(b.value(lane))));
      dst[static_cast<std::size_t>(lane)] =
          maybe_corrupt(source[static_cast<std::size_t>(src)], SdcSite::kShuffle);
    }
  }

  void exec_scalar(Warp& warp, const DecodedInstr& d) {
    // Scalar ops execute once per warp, unconditionally (the legacy path
    // ignores the active mask for them too).
    std::uint64_t& out = warp.s[static_cast<std::size_t>(d.dst)];
    switch (d.op) {
      case Op::kSMov:
        out = scalar_operand(warp, d.a);
        break;
      case Op::kSAdd:
        out = from_i64(as_i64(scalar_operand(warp, d.a)) +
                       as_i64(scalar_operand(warp, d.b)));
        break;
      case Op::kSSub:
        out = from_i64(as_i64(scalar_operand(warp, d.a)) -
                       as_i64(scalar_operand(warp, d.b)));
        break;
      case Op::kSMul:
        out = from_i64(as_i64(scalar_operand(warp, d.a)) *
                       as_i64(scalar_operand(warp, d.b)));
        break;
      case Op::kSMin:
        out = from_i64(std::min(as_i64(scalar_operand(warp, d.a)),
                                as_i64(scalar_operand(warp, d.b))));
        break;
      case Op::kSMax:
        out = from_i64(std::max(as_i64(scalar_operand(warp, d.a)),
                                as_i64(scalar_operand(warp, d.b))));
        break;
      default:
        break;
    }
  }

  /// Shared-memory access; returns bank-conflict replay cycles. The
  /// distinct-word collection is allocation-free (a 4-byte word determines
  /// its bank, so global dedup plus a per-word bank count is equivalent to
  /// the legacy per-bank vectors).
  long long exec_smem(Warp& warp, const DecodedInstr& d, const std::uint64_t* pv) {
    const Ref a = ref(warp, d.a);
    const Ref b = ref(warp, d.b);
    const std::int64_t offset = as_i64(b.value(0));
    const std::size_t bytes = d.width == MemWidth::kB1 ? 1 : 4;
    const Ref c = d.cls == ExecClass::kSts ? ref(warp, d.c) : Ref{};
    std::uint64_t* dst = d.cls == ExecClass::kLds
                             ? &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize]
                             : nullptr;
    std::array<std::int64_t, kWarpSize> words;  // only [0, n_words) is read
    int n_words = 0;
    bool any_active = false;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(pv, d.pred_negate, lane)) {
        continue;
      }
      any_active = true;
      const std::int64_t addr = as_i64(a.value(lane)) + offset;
      // Message built only on failure: the concatenation must stay out of
      // the per-lane hot path.
      if (addr < 0 ||
          static_cast<std::size_t>(addr) + bytes > smem_.size()) [[unlikely]] {
        util::require(false,
                      "shared memory access out of bounds in kernel " + prog_.name);
      }
      const std::int64_t word = addr / 4;
      bool seen = false;
      for (int k = 0; k < n_words; ++k) {
        if (words[static_cast<std::size_t>(k)] == word) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        words[static_cast<std::size_t>(n_words++)] = word;
      }
      if (d.cls == ExecClass::kLds) {
        dst[static_cast<std::size_t>(lane)] =
            load_bits(smem_.data() + addr, d.width);
      } else {
        const std::uint64_t value = maybe_corrupt(c.value(lane), SdcSite::kSmemStore);
        std::memcpy(smem_.data() + addr, &value, bytes);
      }
    }
    // transactions = max distinct words mapped to one bank. i = 0 always
    // yields 1 (no earlier words), so the division-heavy scan starts at 1
    // and a single-word access skips it entirely.
    std::size_t transactions = any_active ? 1 : 0;
    for (int i = 1; i < n_words; ++i) {
      std::size_t same_bank = 1;
      const std::int64_t bank = words[static_cast<std::size_t>(i)] % dev_.smem_banks;
      for (int j = 0; j < i; ++j) {
        if (words[static_cast<std::size_t>(j)] % dev_.smem_banks == bank) {
          ++same_bank;
        }
      }
      transactions = std::max(transactions, same_bank);
    }
    result_.smem_transactions += transactions;
    return transactions > 1
               ? static_cast<long long>(transactions - 1) * dev_.lat.bank_conflict
               : 0;
  }

  /// Global-memory access; returns the dependent load latency (cold vs
  /// cached 128 B segments, same one-bit warm-set model as the legacy path).
  long long exec_gmem(Warp& warp, const DecodedInstr& d, const std::uint64_t* pv) {
    const Ref a = ref(warp, d.a);
    const Ref b = ref(warp, d.b);
    const std::int64_t offset = as_i64(b.value(0));
    const std::size_t bytes = d.width == MemWidth::kB1 ? 1 : 4;
    const Ref c = d.cls == ExecClass::kStg ? ref(warp, d.c) : Ref{};
    std::uint64_t* dst = d.cls == ExecClass::kLdg
                             ? &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize]
                             : nullptr;
    std::array<std::int64_t, kWarpSize> segments;  // only [0, n_segments) is read
    int n_segments = 0;
    bool any_cold = false;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(pv, d.pred_negate, lane)) {
        continue;
      }
      const std::int64_t addr = as_i64(a.value(lane)) + offset;
      const std::int64_t segment = addr / 128;
      bool seen = false;
      for (int k = 0; k < n_segments; ++k) {
        if (segments[static_cast<std::size_t>(k)] == segment) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        segments[static_cast<std::size_t>(n_segments++)] = segment;
      }
      if (warm_segments_.insert(segment).second) {
        any_cold = true;
      }
      if (d.cls == ExecClass::kLdg) {
        dst[static_cast<std::size_t>(lane)] = load_bits(gmem_.at(addr, bytes), d.width);
      } else {
        const std::uint64_t value = c.value(lane);
        std::memcpy(gmem_.at(addr, bytes), &value, bytes);
        if (writes_ != nullptr) {
          writes_->add(addr, static_cast<std::size_t>(bytes));
        }
      }
    }
    result_.gmem_transactions += static_cast<std::uint64_t>(n_segments);
    if (d.cls != ExecClass::kLdg) {
      return 0;  // store latency is charged via the baked base latency
    }
    return any_cold ? dev_.lat.gmem_load : dev_.lat.gmem_load_cached;
  }

  /// Fused shared-memory pair: both accesses execute back to back under
  /// one shared predicate mask (the decoder guarantees the first access
  /// cannot rewrite the predicate register).
  void exec_fused_smem(Warp& warp, const DecodedInstr* g) {
    const std::uint64_t* pv = pred_lanes(warp, g[0]);
    for (int k = 0; k < 2; ++k) {
      const DecodedInstr& d = g[k];
      count_issue(d);
      const long long start = issue_start(warp, d);
      const long long latency = d.latency + exec_smem(warp, d, pv);
      finish(warp, d, start, latency);
    }
  }

  void step(Warp& warp, const DecodedInstr& d);
  void exec_fused(Warp& warp, std::size_t pc);

  /// Default dispatch loop: per-instruction scalar handlers plus the
  /// superinstruction handlers. A derived engine may shadow this (run()
  /// calls it through the CRTP downcast).
  void run_until_barrier(Warp& warp) {
    const auto* code = prog_.code.data();
    const std::size_t n = prog_.code.size();
    while (warp.pc < n) {
      const DecodedInstr& d = code[warp.pc];
      if (d.cls == ExecClass::kBar) {
        if (handle_barrier(warp, d)) {
          return;
        }
        continue;
      }
      if (use_fused_ && d.fused != FusedKind::kNone) {
        exec_fused(warp, warp.pc);
        warp.pc += d.fuse_len;
        continue;
      }
      step(warp, d);
      ++warp.pc;
    }
    warp.done = true;
  }

  /// kBar bookkeeping shared by every dispatch loop: parks the warp at the
  /// barrier (returns true) or skips an all-inactive predicated barrier
  /// (returns false, pc already advanced).
  bool handle_barrier(Warp& warp, const DecodedInstr& d) {
    if (d.pred >= 0) {
      const std::uint64_t* pv = pred_lanes(warp, d);
      bool any = false;
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (lane_active(pv, d.pred_negate, lane)) {
          any = true;
          break;
        }
      }
      if (!any) {
        ++warp.pc;
        return false;
      }
    }
    warp.at_barrier = true;
    warp.barrier_pc = warp.pc;
    ++warp.pc;
    count_issue(d);
    return true;
  }

  const DecodedProgram& prog_;
  const DeviceSpec& dev_;
  GlobalMemory& gmem_;
  std::vector<std::uint8_t> smem_;
  std::vector<Warp> warps_;
  std::unordered_set<std::int64_t> warm_segments_;
  Trace* trace_ = nullptr;
  GmemWriteSet* writes_ = nullptr;
  const SdcPlan* sdc_ = nullptr;
  std::uint64_t sdc_stream_ = 0;
  std::uint64_t sdc_events_ = 0;
  long long max_cycles_ = 0;
  bool use_fused_ = true;
  BlockResult result_;
};

// --- handler tables ---------------------------------------------------------
//
// Instantiated per engine type (the function pointers bind to
// EngineBase<Derived> member specializations), so each derived engine gets
// its own monomorphized copies and the optimizer sees through the calls.

template <class E>
using SimpleFn = void (*)(E&, typename E::Warp&, const DecodedInstr&);
template <class E>
using PairFn = void (*)(E&, typename E::Warp&, const DecodedInstr&,
                        const DecodedInstr&);
template <class E>
using ShflFn = void (*)(E&, typename E::Warp&, const DecodedInstr*);

template <class E, std::size_t... I>
constexpr std::array<std::array<SimpleFn<E>, 2>, kNumLaneOps> make_simple_table(
    std::index_sequence<I...>) {
  return {{{{&E::template exec_simple<static_cast<LaneOp>(I), false>,
             &E::template exec_simple<static_cast<LaneOp>(I), true>}}...}};
}

/// Per-opcode dispatch table: [LaneOp][predicated]. Populated for every
/// lane op so ExecClass::kSimple never falls back to a switch.
template <class E>
inline constexpr auto kSimpleTableFor =
    make_simple_table<E>(std::make_index_sequence<kNumLaneOps>{});

template <class E, LaneOp A, LaneOp B>
constexpr PairFn<E> pick_pair() {
  // if constexpr keeps non-fusible combinations uninstantiated; the table
  // therefore stays in lockstep with the decoder's fusibility predicate.
  if constexpr (fusible_simple_pair(A, B)) {
    return &E::template exec_fused_pair<A, B>;
  } else {
    return nullptr;
  }
}

template <class E, std::size_t A, std::size_t... B>
constexpr std::array<PairFn<E>, kNumLaneOps> make_pair_row(std::index_sequence<B...>) {
  return {{pick_pair<E, static_cast<LaneOp>(A), static_cast<LaneOp>(B)>()...}};
}

template <class E, std::size_t... A>
constexpr std::array<std::array<PairFn<E>, kNumLaneOps>, kNumLaneOps> make_pair_table(
    std::index_sequence<A...>) {
  return {{make_pair_row<E, A>(std::make_index_sequence<kNumLaneOps>{})...}};
}

/// Fused-pair dispatch: [leader LaneOp][second LaneOp]; null where the
/// decoder never marks a pair.
template <class E>
inline constexpr auto kPairTableFor =
    make_pair_table<E>(std::make_index_sequence<kNumLaneOps>{});

template <class E, LaneOp B>
constexpr std::array<ShflFn<E>, 2> pick_shfl() {
  if constexpr (fusible_shfl_consumer(B)) {
    return {{&E::template exec_fused_shfl<B, false>,
             &E::template exec_fused_shfl<B, true>}};
  } else {
    return {{nullptr, nullptr}};
  }
}

template <class E, std::size_t... B>
constexpr std::array<std::array<ShflFn<E>, 2>, kNumLaneOps> make_shfl_table(
    std::index_sequence<B...>) {
  return {{pick_shfl<E, static_cast<LaneOp>(B)>()...}};
}

/// Fused shuffle-group dispatch: [consumer LaneOp][has trailing kMov].
template <class E>
inline constexpr auto kShflTableFor =
    make_shfl_table<E>(std::make_index_sequence<kNumLaneOps>{});

template <class Derived>
void EngineBase<Derived>::step(Warp& warp, const DecodedInstr& d) {
  count_issue(d);

  if (d.cls == ExecClass::kLoop) {
    const auto trips = as_i64(scalar_operand(warp, d.a));
    if (trips <= 0) {
      warp.pc = d.match;  // caller's ++pc steps past the matching kEndLoop
    } else {
      warp.loops.push_back({warp.pc, trips});
    }
    warp.cursor += dev_.lat.issue_interval;
    return;
  }
  if (d.cls == ExecClass::kEndLoop) {
    util::ensure(!warp.loops.empty(), "interpreter: endloop without loop");
    typename Warp::LoopFrame& frame = warp.loops.back();
    if (--frame.remaining > 0) {
      warp.pc = frame.begin_pc;  // caller increments to the first body instruction
    } else {
      warp.loops.pop_back();
    }
    warp.cursor += kBranchCycles;
    return;
  }

  const long long start = issue_start(warp, d);
  long long latency = d.latency;
  switch (d.cls) {
    case ExecClass::kSimple:
      kSimpleTableFor<EngineBase>[static_cast<std::size_t>(d.lane)][d.pred >= 0 ? 1 : 0](
          *this, warp, d);
      break;
    case ExecClass::kScalar:
      exec_scalar(warp, d);
      break;
    case ExecClass::kShuffle:
      exec_shuffle(warp, d);
      break;
    case ExecClass::kLds:
    case ExecClass::kSts:
      latency += exec_smem(warp, d, pred_lanes(warp, d));
      break;
    case ExecClass::kLdg:
    case ExecClass::kStg:
      latency += exec_gmem(warp, d, pred_lanes(warp, d));
      break;
    default:
      break;  // kBar/kLoop/kEndLoop never reach here
  }
  finish(warp, d, start, latency);
}

template <class Derived>
void EngineBase<Derived>::exec_fused(Warp& warp, std::size_t pc) {
  const DecodedInstr* g = &prog_.code[pc];
  switch (g->fused) {
    case FusedKind::kSimplePair:
      kPairTableFor<EngineBase>[static_cast<std::size_t>(g[0].lane)][static_cast<std::size_t>(
          g[1].lane)](*this, warp, g[0], g[1]);
      break;
    case FusedKind::kShflAlu:
      kShflTableFor<EngineBase>[static_cast<std::size_t>(g[1].lane)][0](*this, warp, g);
      break;
    case FusedKind::kShflAluMov:
      kShflTableFor<EngineBase>[static_cast<std::size_t>(g[1].lane)][1](*this, warp, g);
      break;
    case FusedKind::kSmemPair:
      exec_fused_smem(warp, g);
      break;
    case FusedKind::kNone:
      break;
  }
}

}  // namespace wsim::simt::fastdetail
