#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>

#include "wsim/simt/device.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/memory.hpp"

namespace wsim::simt {

/// Coalesced byte intervals of GlobalMemory written by one block. The
/// ExecutionEngine's debug write-overlap checker records one per executed
/// block and cross-checks them: the interpreter's "sequential functional
/// execution is race-free for correct kernels" contract requires distinct
/// blocks to write disjoint ranges, and this makes the assumption
/// verifiable instead of trusted.
class GmemWriteSet {
 public:
  /// Records [addr, addr + bytes); adjacent/overlapping spans coalesce.
  void add(std::int64_t addr, std::size_t bytes);

  bool empty() const noexcept { return spans_.empty(); }

  /// begin -> end byte offsets, disjoint and sorted.
  const std::map<std::int64_t, std::int64_t>& spans() const noexcept {
    return spans_;
  }

  /// True when any byte is covered by both sets.
  bool overlaps(const GmemWriteSet& other) const noexcept;

 private:
  std::map<std::int64_t, std::int64_t> spans_;
};

/// Execution record of one thread block: functional side effects land in
/// the GlobalMemory arena; the numbers here feed the SM scheduler and the
/// performance model.
struct BlockResult {
  long long cycles = 0;                   ///< block makespan (max over warps)
  std::uint64_t instructions = 0;         ///< warp-level instructions issued
  std::uint64_t smem_transactions = 0;    ///< shared-memory transactions incl. bank-conflict replays
  std::uint64_t gmem_transactions = 0;    ///< 128-byte global segments touched
  std::uint64_t barriers = 0;             ///< __syncthreads executed (per block)
  std::uint64_t sdc_flips = 0;            ///< injected-and-activated bit flips (simt::SdcPlan)
  std::array<std::uint64_t, kNumOps> op_counts{};  ///< warp-level issue count per opcode

  std::uint64_t count(Op op) const noexcept {
    return op_counts[static_cast<std::size_t>(op)];
  }
  std::uint64_t shuffle_count() const noexcept {
    return count(Op::kShfl) + count(Op::kShflUp) + count(Op::kShflDown) +
           count(Op::kShflXor);
  }
  std::uint64_t smem_instr_count() const noexcept {
    return count(Op::kLds) + count(Op::kSts);
  }
};

/// Executes one block of `kernel` on `device`, with the given scalar
/// launch parameters (block-uniform; missing parameters read as zero).
///
/// Timing model: each warp runs an in-order pipeline with a per-register
/// scoreboard — an instruction issues when its sources are ready, completes
/// after the architecture's dependent latency, and consecutive issues from
/// the same warp are one `issue_interval` apart. Warps execute
/// independently between barriers (sequential functional execution is
/// race-free for correct kernels); at a `kBar` every warp's clock joins at
/// the slowest arrival plus the barrier latency. Shared-memory bank
/// conflicts serialize transactions and add `bank_conflict` cycles per
/// replay.
///
/// Throws util::CheckError on malformed kernels, out-of-bounds memory
/// accesses, or barrier divergence.
///
/// When `trace` is non-null, every executed instruction is recorded with
/// its issue/completion cycles (see simt::Trace) — expensive for big
/// kernels, intended for debugging.
///
/// When `writes` is non-null, every global-memory store's byte range is
/// recorded (for the engine's write-overlap checker).
BlockResult run_block(const Kernel& kernel, const DeviceSpec& device,
                      GlobalMemory& gmem, std::span<const std::uint64_t> scalar_args,
                      class Trace* trace = nullptr, GmemWriteSet* writes = nullptr);

struct SdcPlan;         // simt/sdc.hpp
struct DecodedProgram;  // simt/decode.hpp

/// Which interpreter executes a block / launch.
///
/// kFast runs the predecoded fast path (per-(kernel, device) DecodedProgram
/// from the shared cache, handler dispatch, superinstruction fusion); it is
/// the default and is bit-identical to kLegacy in functional outputs,
/// BlockResult counters, and SDC write-event numbering. kVector runs the
/// lane-vector engine: all 32 lanes of an unpredicated instruction in a
/// handful of SIMD ops (AVX-512/AVX2/generic variants picked once at
/// runtime, overridable via WSIM_VECTOR_ISA), with a masked per-lane
/// fallback for divergent warps — also bit-identical. kLegacy runs the
/// original switch interpreter — kept for A/B comparison and as the
/// differential-testing reference. kDefault defers to the WSIM_INTERP
/// environment variable ("legacy" selects kLegacy, "vector" kVector;
/// anything else kFast).
enum class InterpPath : std::uint8_t { kDefault, kFast, kLegacy, kVector };

/// Resolves kDefault against WSIM_INTERP; returns kFast, kLegacy, or
/// kVector.
InterpPath resolve_interp_path(InterpPath requested) noexcept;

/// Name of the SIMD tier the lane-vector engine resolved to for this
/// process: "avx512", "avx2", or "generic". Detection runs once (CPU
/// features clamped by the WSIM_VECTOR_ISA environment variable: a
/// requested tier the CPU lacks falls back to the detected one; requesting
/// a lower tier — e.g. WSIM_VECTOR_ISA=generic on an AVX-512 machine —
/// always works, which is how the no-AVX CI job pins the fallback path).
const char* vector_isa_name() noexcept;

/// Extended per-block execution knobs (the engine's dispatch path).
struct BlockRunOptions {
  class Trace* trace = nullptr;
  GmemWriteSet* writes = nullptr;
  /// Deterministic bit-flip injection; null disables (see simt/sdc.hpp).
  /// Flips land on vector-register writes, shared-memory stores, and
  /// shuffle payloads; loads and scalar (control-flow) registers stay
  /// clean, so injection perturbs values, never loop trip counts.
  const SdcPlan* sdc = nullptr;
  /// Stream id identifying (device, launch, block) for injection draws
  /// (simt::sdc_stream).
  std::uint64_t sdc_stream = 0;
  /// Watchdog: a block whose makespan exceeds this many cycles throws
  /// simt::LaunchTimeout (see simt/watchdog.hpp). 0 = unlimited. A block
  /// finishing at exactly the budget completes normally. Barrier
  /// deadlocks — warps done while others wait at __syncthreads, or warps
  /// waiting at different barriers — throw LaunchTimeout regardless of
  /// budget.
  long long max_cycles = 0;
  /// Interpreter selection (see InterpPath).
  InterpPath interp = InterpPath::kDefault;
  /// Fast path only: predecoded program for (kernel, device), usually
  /// resolved once per launch by the ExecutionEngine. When null the block
  /// fetches it from simt::shared_decoded_cache() itself. Must match the
  /// (kernel, device) passed to run_block.
  const DecodedProgram* decoded = nullptr;
};

/// Like the overload above, with injection and watchdog knobs.
BlockResult run_block(const Kernel& kernel, const DeviceSpec& device,
                      GlobalMemory& gmem, std::span<const std::uint64_t> scalar_args,
                      const BlockRunOptions& options);

/// The predecoded fast path: executes one block of `program` (obtained
/// from simt::decode_program / the shared cache) with the same timing
/// model, functional semantics, SDC event numbering, and error surface as
/// the legacy interpreter. `options.interp`/`options.decoded` are ignored
/// (the caller already resolved them).
BlockResult run_block_fast(const DecodedProgram& program, const DeviceSpec& device,
                           GlobalMemory& gmem,
                           std::span<const std::uint64_t> scalar_args,
                           const BlockRunOptions& options);

/// The lane-vector engine (vectorpath.cpp): same contract as
/// run_block_fast, executing unpredicated instructions 32 lanes at a time
/// with the SIMD tier reported by vector_isa_name(). Blocks with SDC
/// injection enabled delegate to run_block_fast wholesale (injection
/// numbers per-lane write events sequentially, which pins the scalar
/// execution order), so injection parity is inherited rather than
/// re-implemented.
BlockResult run_block_vector(const DecodedProgram& program, const DeviceSpec& device,
                             GlobalMemory& gmem,
                             std::span<const std::uint64_t> scalar_args,
                             const BlockRunOptions& options);

}  // namespace wsim::simt
