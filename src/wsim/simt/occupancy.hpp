#pragma once

#include <string_view>

#include "wsim/simt/device.hpp"
#include "wsim/simt/isa.hpp"

namespace wsim::simt {

/// Result of the occupancy calculation (paper Eq. 8): how many blocks fit
/// on one SM given register, shared-memory, thread and block-slot budgets,
/// and which resource is the limiter — the quantity the paper's trade-off
/// analysis revolves around (shuffle frees smem but raises register use).
struct Occupancy {
  int blocks_per_sm = 0;
  int active_warps_per_sm = 0;
  int active_threads_per_sm = 0;
  double fraction = 0.0;  ///< active warps / max warps

  enum class Limiter { kRegisters, kSharedMemory, kThreads, kBlockSlots };
  Limiter limiter = Limiter::kBlockSlots;

  /// Paper Eq. 8: cells updatable in parallel when each active thread owns
  /// one cell.
  long long parallelism(const DeviceSpec& device) const noexcept {
    return static_cast<long long>(device.sm_count) * active_threads_per_sm;
  }
};

std::string_view to_string(Occupancy::Limiter limiter) noexcept;

/// Computes occupancy from raw kernel characteristics (the same inputs the
/// paper reads off nvcc: registers/thread, shared memory/block,
/// threads/block).
Occupancy compute_occupancy(const DeviceSpec& device, int threads_per_block,
                            int regs_per_thread, int smem_bytes_per_block);

/// Convenience overload reading the characteristics from a compiled kernel.
Occupancy compute_occupancy(const DeviceSpec& device, const Kernel& kernel);

}  // namespace wsim::simt
