#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsim::simt {

/// GPU micro-architecture generation. The paper contrasts Kepler (K40)
/// against Maxwell (K1200, Titan X); instruction latencies differ per
/// generation (paper Section II-B / Figure 3).
enum class Arch {
  kKepler,
  kMaxwell,
};

std::string_view to_string(Arch arch) noexcept;

/// Dependent-instruction latencies in cycles, per architecture. Values for
/// Maxwell are seeded from the paper's own measurements (shared memory
/// ~21 cy, __syncthreads ~57 cy, shfl/up/down ~9 cy derived from the
/// paper's 183- and 22-cycle critical-path estimates, shfl_xor slower than
/// the other variants); Kepler values follow the paper's qualitative
/// findings (everything slower, shfl_xor the *fastest* variant) scaled to
/// published microbenchmark studies of GK110.
struct LatencyTable {
  int reg_access = 1;        ///< paper convention: direct register access = 1
  int ialu = 6;              ///< integer add/logic/compare/select
  int imul = 13;             ///< integer multiply
  int falu = 6;              ///< f32 add/mul/fma/max
  int shfl = 9;              ///< __shfl (any-to-any)
  int shfl_up = 9;           ///< __shfl_up
  int shfl_down = 9;         ///< __shfl_down
  int shfl_xor = 12;         ///< __shfl_xor
  int smem_load = 21;        ///< shared-memory load
  int smem_store = 21;       ///< shared-memory store
  int bank_conflict = 2;     ///< extra cycles per additional conflicting transaction
  int sync_barrier = 57;     ///< __syncthreads
  int gmem_load = 350;        ///< global-memory load, cold (DRAM)
  int gmem_load_cached = 80;  ///< load hitting a 128 B segment this block already touched
  int gmem_store = 40;        ///< global-memory store (fire-and-forget commit)
  int issue_interval = 1;    ///< cycles between issue groups from one warp
  /// Independent instructions one warp may issue in the same cycle
  /// (Kepler/Maxwell schedulers dual-issue); dependent instructions still
  /// pay full latency.
  int issues_per_cycle = 2;
};

/// Static description of a simulated device: resource limits drive the
/// occupancy calculator (paper Eq. 8), clocks drive CUPS conversion, and
/// the latency table drives the warp interpreter.
struct DeviceSpec {
  std::string name;
  Arch arch = Arch::kMaxwell;
  int sm_count = 1;
  int cores_per_sm = 128;
  double clock_ghz = 1.0;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 32;
  int registers_per_sm = 65536;
  int max_registers_per_thread = 255;
  int register_alloc_granularity = 256;  ///< registers per warp allocation unit
  int shared_mem_per_sm = 65536;         ///< bytes
  int shared_mem_per_block = 49152;      ///< bytes
  int shared_mem_alloc_granularity = 256;  ///< bytes
  int smem_banks = 32;
  int schedulers_per_sm = 4;  ///< warp instructions issued per cycle per SM
  double global_mem_bw_gbps = 100.0;
  double pcie_bw_gbps = 11.0;
  double pcie_latency_us = 8.0;
  double kernel_launch_overhead_us = 6.0;
  LatencyTable lat;

  /// Peak single-precision throughput: 2 FLOP (FMA) per core per cycle.
  double peak_gflops() const noexcept;

  /// Aggregate shared-memory bandwidth: every SM serves one 4-byte word
  /// per bank per cycle (Table I's smem BW column).
  double shared_mem_bw_gbps() const noexcept;

  /// Latency for one shuffle variant; see isa.hpp for variant meaning.
  int shuffle_latency(int variant) const;
};

/// Nvidia Tesla K40 (Kepler GK110B) — used for Figure 3's architecture
/// comparison.
DeviceSpec make_k40();

/// Nvidia Quadro K1200 (Maxwell GM107) — the paper's low-power device.
DeviceSpec make_k1200();

/// Nvidia GeForce GTX Titan X (Maxwell GM200) — the paper's high-end
/// device.
DeviceSpec make_titan_x();

/// All three devices the paper evaluates, in paper order.
std::vector<DeviceSpec> all_devices();

/// Lookup by (case-sensitive) name: "K40", "K1200", "Titan X". Throws
/// util::CheckError on unknown names.
DeviceSpec device_by_name(std::string_view name);

}  // namespace wsim::simt
