#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::simt {

/// Simulated device global memory: a single arena shared by all blocks of
/// all launches against it. Hosts allocate buffers, fill them with typed
/// writes, launch kernels that address the arena with absolute byte
/// offsets, and read results back — mirroring cudaMalloc/cudaMemcpy.
class GlobalMemory {
 public:
  explicit GlobalMemory(std::size_t initial_capacity = 0) { data_.reserve(initial_capacity); }

  /// Allocates `bytes` with the given power-of-two alignment; returns the
  /// byte offset of the allocation ("device pointer").
  std::int64_t alloc(std::size_t bytes, std::size_t align = 4) {
    util::require(align > 0 && (align & (align - 1)) == 0, "alloc: align must be a power of two");
    const std::size_t offset = (data_.size() + align - 1) & ~(align - 1);
    data_.resize(offset + bytes, std::uint8_t{0});
    return static_cast<std::int64_t>(offset);
  }

  std::size_t size() const noexcept { return data_.size(); }

  /// Raw access with bounds checking; `bytes` may be zero.
  std::uint8_t* at(std::int64_t addr, std::size_t bytes) {
    util::require(addr >= 0 && static_cast<std::size_t>(addr) + bytes <= data_.size(),
                  "global memory access out of bounds");
    return data_.data() + addr;
  }
  const std::uint8_t* at(std::int64_t addr, std::size_t bytes) const {
    util::require(addr >= 0 && static_cast<std::size_t>(addr) + bytes <= data_.size(),
                  "global memory access out of bounds");
    return data_.data() + addr;
  }

  // --- typed host-side copies (cudaMemcpy equivalents) -------------------
  void write_f32(std::int64_t addr, std::span<const float> values) {
    std::memcpy(at(addr, values.size_bytes()), values.data(), values.size_bytes());
  }
  void write_i32(std::int64_t addr, std::span<const std::int32_t> values) {
    std::memcpy(at(addr, values.size_bytes()), values.data(), values.size_bytes());
  }
  void write_u8(std::int64_t addr, std::span<const std::uint8_t> values) {
    std::memcpy(at(addr, values.size_bytes()), values.data(), values.size_bytes());
  }

  std::vector<float> read_f32(std::int64_t addr, std::size_t count) const {
    std::vector<float> out(count);
    std::memcpy(out.data(), at(addr, count * 4), count * 4);
    return out;
  }
  std::vector<std::int32_t> read_i32(std::int64_t addr, std::size_t count) const {
    std::vector<std::int32_t> out(count);
    std::memcpy(out.data(), at(addr, count * 4), count * 4);
    return out;
  }
  std::vector<std::uint8_t> read_u8(std::int64_t addr, std::size_t count) const {
    std::vector<std::uint8_t> out(count);
    std::memcpy(out.data(), at(addr, count), count);
    return out;
  }

  float read_f32_one(std::int64_t addr) const {
    float v = 0.0F;
    std::memcpy(&v, at(addr, 4), 4);
    return v;
  }
  std::int32_t read_i32_one(std::int64_t addr) const {
    std::int32_t v = 0;
    std::memcpy(&v, at(addr, 4), 4);
    return v;
  }

 private:
  std::vector<std::uint8_t> data_;
};

}  // namespace wsim::simt
