#include "wsim/simt/trace.hpp"

#include <ostream>

namespace wsim::simt {

void Trace::write_chrome_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) {
      os << ",";
    }
    first = false;
    const long long duration = e.end > e.start ? e.end - e.start : 1;
    os << "\n  {\"name\": \"" << e.name << "\", \"ph\": \"X\", \"pid\": 0, "
       << "\"tid\": " << e.warp << ", \"ts\": " << e.start << ", \"dur\": "
       << duration << "}";
  }
  os << "\n]\n";
}

}  // namespace wsim::simt
