#include "wsim/simt/energy.hpp"

#include "wsim/util/check.hpp"

namespace wsim::simt {

EnergyEstimate block_energy(const BlockResult& block, const EnergyTable& table) {
  EnergyEstimate e;
  const auto count = [&block](Op op) {
    return static_cast<double>(block.count(op));
  };
  const double shuffles = static_cast<double>(block.shuffle_count());
  const double smem_tx = static_cast<double>(block.smem_transactions);
  const double gmem_tx = static_cast<double>(block.gmem_transactions);
  const double barriers = static_cast<double>(block.barriers);
  // Everything issued that is not data movement or synchronization burns
  // ALU-class energy (control flow included: branch units are cheap but
  // not free).
  const double alu_like = static_cast<double>(block.instructions) - shuffles -
                          count(Op::kLds) - count(Op::kSts) - count(Op::kLdg) -
                          count(Op::kStg) - count(Op::kBar);
  e.dynamic_pj = alu_like * table.alu_pj + shuffles * table.shuffle_pj +
                 smem_tx * table.smem_transaction_pj +
                 gmem_tx * table.gmem_transaction_pj + barriers * table.sync_pj;
  return e;
}

EnergyEstimate launch_energy(const BlockResult& representative, std::size_t blocks,
                             double kernel_seconds, const DeviceSpec& device,
                             const EnergyTable& table) {
  util::require(kernel_seconds >= 0.0, "launch_energy: negative runtime");
  EnergyEstimate e = block_energy(representative, table);
  e.dynamic_pj *= static_cast<double>(blocks);
  e.static_pj = table.idle_w_per_sm * device.sm_count * kernel_seconds * 1e12;
  return e;
}

double energy_per_cell_pj(const EnergyEstimate& energy, std::size_t cells) {
  util::require(cells > 0, "energy_per_cell_pj: cells must be positive");
  return energy.total_pj() / static_cast<double>(cells);
}

}  // namespace wsim::simt
