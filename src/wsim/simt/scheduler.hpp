#pragma once

#include <cstdint>
#include <span>

#include "wsim/simt/device.hpp"
#include "wsim/simt/occupancy.hpp"

namespace wsim::simt {

/// Cost of one block as measured by the interpreter, sufficient for the
/// grid-level composition.
struct BlockCost {
  long long latency_cycles = 0;        ///< block makespan (critical path)
  std::uint64_t issue_slots = 0;       ///< warp-level instructions issued
  std::uint64_t smem_transactions = 0; ///< shared-memory transactions
};

/// Grid-level timing for a kernel launch.
struct KernelTiming {
  long long cycles = 0;   ///< kernel makespan in device cycles
  double seconds = 0.0;   ///< cycles / clock
  long long latency_bound_cycles = 0;     ///< list-scheduling makespan component
  long long throughput_bound_cycles = 0;  ///< busiest SM's issue/smem serialization
};

/// Composes per-block costs into a kernel makespan.
///
/// Each SM offers `occupancy.blocks_per_sm` concurrent block slots; blocks
/// dispatch greedily to the earliest-available slot (the hardware's dynamic
/// block scheduler). Latency-wise resident blocks overlap fully — that is
/// what occupancy buys — but every instruction still consumes one of the
/// SM's issue slots (`schedulers_per_sm` per cycle) and every shared-memory
/// transaction consumes the SM's single warp-wide smem port, so a fully
/// occupied SM degenerates to the throughput bound. The makespan is the
/// maximum over SMs of max(latency-schedule finish, throughput
/// serialization).
KernelTiming schedule_blocks(const DeviceSpec& device, const Occupancy& occupancy,
                             std::span<const BlockCost> blocks);

}  // namespace wsim::simt
