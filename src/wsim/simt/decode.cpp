#include "wsim/simt/decode.hpp"

#include <algorithm>
#include <utility>

#include "wsim/obs/metrics.hpp"
#include "wsim/util/check.hpp"

namespace wsim::simt {

namespace {

std::uint64_t hash_bytes(std::uint64_t h, const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {  // FNV-1a
    h = (h ^ p[i]) * 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hash_value(std::uint64_t h, std::uint64_t v) noexcept {
  return hash_bytes(h, &v, sizeof(v));
}

ExecClass classify(Op op) noexcept {
  switch (op) {
    case Op::kShfl:
    case Op::kShflUp:
    case Op::kShflDown:
    case Op::kShflXor:
      return ExecClass::kShuffle;
    case Op::kLds:
      return ExecClass::kLds;
    case Op::kSts:
      return ExecClass::kSts;
    case Op::kLdg:
      return ExecClass::kLdg;
    case Op::kStg:
      return ExecClass::kStg;
    case Op::kBar:
      return ExecClass::kBar;
    case Op::kSMov:
    case Op::kSAdd:
    case Op::kSSub:
    case Op::kSMul:
    case Op::kSMin:
    case Op::kSMax:
      return ExecClass::kScalar;
    case Op::kLoop:
      return ExecClass::kLoop;
    case Op::kEndLoop:
      return ExecClass::kEndLoop;
    default:
      return ExecClass::kSimple;
  }
}

LaneOp lane_of(const Instr& ins) noexcept {
  switch (ins.op) {
    case Op::kMov: return LaneOp::kMov;
    case Op::kTid: return LaneOp::kTid;
    case Op::kLaneId: return LaneOp::kLaneId;
    case Op::kWarpId: return LaneOp::kWarpId;
    case Op::kFAdd: return LaneOp::kFAdd;
    case Op::kFSub: return LaneOp::kFSub;
    case Op::kFMul: return LaneOp::kFMul;
    case Op::kFFma: return LaneOp::kFFma;
    case Op::kFMax: return LaneOp::kFMax;
    case Op::kFMin: return LaneOp::kFMin;
    case Op::kIAdd: return LaneOp::kIAdd;
    case Op::kISub: return LaneOp::kISub;
    case Op::kIMul: return LaneOp::kIMul;
    case Op::kIMax: return LaneOp::kIMax;
    case Op::kIMin: return LaneOp::kIMin;
    case Op::kIAnd: return LaneOp::kIAnd;
    case Op::kIOr: return LaneOp::kIOr;
    case Op::kIXor: return LaneOp::kIXor;
    case Op::kShl: return LaneOp::kShl;
    case Op::kShr: return LaneOp::kShr;
    case Op::kSetp:
      return ins.dtype == DType::kF32 ? LaneOp::kSetpF32 : LaneOp::kSetpI64;
    case Op::kSelp: return LaneOp::kSelp;
    default: return LaneOp::kNop;
  }
}

/// Mirrors the legacy interpreter's base_latency() exactly: equal decoded
/// latencies are what keep BlockResult cycles bit-identical.
std::int32_t baked_latency(Op op, const LatencyTable& lat) noexcept {
  switch (op) {
    case Op::kMov:
      return lat.reg_access;
    case Op::kTid:
    case Op::kLaneId:
    case Op::kWarpId:
    case Op::kIAdd:
    case Op::kISub:
    case Op::kIMax:
    case Op::kIMin:
    case Op::kIAnd:
    case Op::kIOr:
    case Op::kIXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kSetp:
    case Op::kSelp:
    case Op::kSMov:
    case Op::kSAdd:
    case Op::kSSub:
    case Op::kSMin:
    case Op::kSMax:
      return lat.ialu;
    case Op::kIMul:
    case Op::kSMul:
      return lat.imul;
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFFma:
    case Op::kFMax:
    case Op::kFMin:
      return lat.falu;
    case Op::kShfl:
      return lat.shfl;
    case Op::kShflUp:
      return lat.shfl_up;
    case Op::kShflDown:
      return lat.shfl_down;
    case Op::kShflXor:
      return lat.shfl_xor;
    case Op::kLds:
      return lat.smem_load;
    case Op::kSts:
      return lat.smem_store;
    case Op::kLdg:
      return 0;  // resolved per access (warm vs cold segment)
    case Op::kStg:
      return lat.gmem_store;
    default:
      return 1;
  }
}

bool unpredicated(const DecodedInstr& d) noexcept { return d.pred < 0; }

/// Marks fused-group leaders. A group is legal only when control flow can
/// never enter it mid-group (`target` marks loop-entry and loop-exit
/// resume points) and when executing the constituents through one handler
/// is provably order-equivalent to executing them back to back:
///
///  * kSimplePair / shuffle-led groups take unpredicated per-lane-pure
///    constituents, so interleaving them lane by lane touches exactly the
///    same (register, lane) cells in a compatible order — and the shuffle
///    handler pre-reads its 32 source lanes like the legacy path does.
///  * kSmemPair runs its two accesses back to back sharing one active
///    mask, which requires the first access not to write the pair's
///    predicate register.
void mark_fusion(DecodedProgram& prog, const std::vector<bool>& target) {
  auto& code = prog.code;
  std::size_t i = 0;
  while (i < code.size()) {
    DecodedInstr& d = code[i];
    if (d.cls == ExecClass::kShuffle && unpredicated(d) && i + 1 < code.size() &&
        !target[i + 1]) {
      const DecodedInstr& d2 = code[i + 1];
      if (d2.cls == ExecClass::kSimple && unpredicated(d2) &&
          fusible_shfl_consumer(d2.lane)) {
        if (i + 2 < code.size() && !target[i + 2] &&
            code[i + 2].cls == ExecClass::kSimple && unpredicated(code[i + 2]) &&
            code[i + 2].lane == LaneOp::kMov) {
          d.fused = FusedKind::kShflAluMov;
          d.fuse_len = 3;
        } else {
          d.fused = FusedKind::kShflAlu;
          d.fuse_len = 2;
        }
        prog.fused_groups += 1;
        i += d.fuse_len;
        continue;
      }
    }
    if (d.cls == ExecClass::kSimple && unpredicated(d) && d.lane != LaneOp::kNop &&
        i + 1 < code.size() && !target[i + 1]) {
      const DecodedInstr& d2 = code[i + 1];
      if (d2.cls == ExecClass::kSimple && unpredicated(d2) &&
          fusible_simple_pair(d.lane, d2.lane)) {
        d.fused = FusedKind::kSimplePair;
        d.fuse_len = 2;
        prog.fused_groups += 1;
        i += 2;
        continue;
      }
    }
    if ((d.cls == ExecClass::kLds || d.cls == ExecClass::kSts) &&
        i + 1 < code.size() && !target[i + 1]) {
      const DecodedInstr& d2 = code[i + 1];
      const bool same_mask = d2.pred == d.pred && d2.pred_negate == d.pred_negate;
      const bool writes_mask =
          d.cls == ExecClass::kLds && d.pred >= 0 && d.dst == d.pred;
      if ((d2.cls == ExecClass::kLds || d2.cls == ExecClass::kSts) && same_mask &&
          !writes_mask) {
        d.fused = FusedKind::kSmemPair;
        d.fuse_len = 2;
        prog.fused_groups += 1;
        i += 2;
        continue;
      }
    }
    ++i;
  }
}

/// Bakes the lane-vector engine's dispatch metadata (see vectorpath.cpp):
/// which instructions execute 32 lanes at a time (DecodedInstr::vec), and
/// which loops qualify for the steady-state fast-forward. Both are pure
/// classification — the fast and legacy engines ignore these fields, so
/// the decoded form stays one program shared by all three interpreters.
void mark_vector_metadata(DecodedProgram& prog) {
  auto& code = prog.code;
  for (DecodedInstr& d : code) {
    if (d.pred < 0 && ((d.cls == ExecClass::kSimple && d.lane != LaneOp::kNop) ||
                       d.cls == ExecClass::kShuffle)) {
      d.vec = true;
      prog.vec_instrs += 1;
    } else if (d.pred >= 0 && d.cls == ExecClass::kSimple &&
               d.lane != LaneOp::kNop) {
      // Every lane op is a pure elementwise function, so a predicated
      // simple op can run full-width and blend under the predicate mask.
      d.vec_masked = true;
      prog.vec_instrs += 1;
    }
  }

  const auto push_unique = [](std::vector<std::int16_t>& v, std::int16_t r) {
    if (std::find(v.begin(), v.end(), r) == v.end()) {
      v.push_back(r);
    }
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].cls != ExecClass::kLoop) {
      continue;
    }
    const std::size_t end = code[i].match;
    bool eligible = true;
    for (std::size_t j = i + 1; j < end && eligible; ++j) {
      switch (code[j].cls) {
        case ExecClass::kSimple:
        case ExecClass::kShuffle:
        case ExecClass::kScalar:
        case ExecClass::kLds:
        case ExecClass::kSts:
          break;
        case ExecClass::kBar:
          // A single-warp barrier is a pure cursor bump (arrival == the
          // warp's own cursor, no rendezvous), which is shift-invariant;
          // with more warps the release cycle couples to the other warps'
          // clocks and the body must stay exact.
          eligible = prog.warps == 1;
          break;
        default:
          // kLdg/kStg (global warm-set state) and nested loops keep the
          // body on the exact path.
          eligible = false;
          break;
      }
    }
    if (!eligible) {
      continue;
    }
    DecodedProgram::AccelLoop al;
    al.begin = static_cast<std::uint32_t>(i);
    for (std::size_t j = i + 1; j < end; ++j) {
      const DecodedInstr& d = code[j];
      if (d.dst >= 0) {
        push_unique(d.scalar_dst ? al.sregs_written : al.vregs_written, d.dst);
      }
    }
    for (std::size_t j = i + 1; j < end; ++j) {
      const DecodedInstr& d = code[j];
      for (const std::int16_t r : d.rv) {
        if (r >= 0 && std::find(al.vregs_written.begin(), al.vregs_written.end(), r) ==
                          al.vregs_written.end()) {
          push_unique(al.vregs_read, r);
        }
      }
      for (const std::int16_t r : d.rs) {
        if (r >= 0 && std::find(al.sregs_written.begin(), al.sregs_written.end(), r) ==
                          al.sregs_written.end()) {
          push_unique(al.sregs_read, r);
        }
      }
      al.pred_stable.push_back(
          d.pred >= 0 && std::find(al.vregs_written.begin(), al.vregs_written.end(),
                                   d.pred) == al.vregs_written.end()
              ? 1
              : 0);
    }
    code[i].accel = static_cast<std::int16_t>(prog.accel_loops.size());
    prog.accel_loops.push_back(std::move(al));
  }
}

}  // namespace

std::uint64_t kernel_identity(const Kernel& kernel, const DeviceSpec& device) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = hash_bytes(h, kernel.name.data(), kernel.name.size());
  h = hash_value(h, static_cast<std::uint64_t>(kernel.threads_per_block));
  h = hash_value(h, static_cast<std::uint64_t>(kernel.vreg_count));
  h = hash_value(h, static_cast<std::uint64_t>(kernel.sreg_count));
  h = hash_value(h, static_cast<std::uint64_t>(kernel.smem_bytes));
  for (const Instr& ins : kernel.code) {
    h = hash_value(h, static_cast<std::uint64_t>(ins.op));
    h = hash_value(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(ins.dst)));
    for (const Operand* operand : {&ins.a, &ins.b, &ins.c}) {
      h = hash_value(h, static_cast<std::uint64_t>(operand->kind));
      h = hash_value(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(operand->reg)));
      h = hash_value(h, operand->imm);
    }
    h = hash_value(h, static_cast<std::uint64_t>(ins.cmp));
    h = hash_value(h, static_cast<std::uint64_t>(ins.dtype));
    h = hash_value(h, static_cast<std::uint64_t>(ins.width));
    h = hash_value(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(ins.pred)));
    h = hash_value(h, static_cast<std::uint64_t>(ins.pred_negate));
  }
  h = hash_bytes(h, device.name.data(), device.name.size());
  h = hash_value(h, static_cast<std::uint64_t>(device.arch));
  h = hash_value(h, static_cast<std::uint64_t>(device.smem_banks));
  const LatencyTable& lat = device.lat;
  for (const int v : {lat.reg_access, lat.ialu, lat.imul, lat.falu, lat.shfl,
                      lat.shfl_up, lat.shfl_down, lat.shfl_xor, lat.smem_load,
                      lat.smem_store, lat.bank_conflict, lat.sync_barrier,
                      lat.gmem_load, lat.gmem_load_cached, lat.gmem_store,
                      lat.issue_interval, lat.issues_per_cycle}) {
    h = hash_value(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  return h;
}

std::shared_ptr<const DecodedProgram> decode_program(const Kernel& kernel,
                                                     const DeviceSpec& device) {
  validate(kernel);

  auto prog = std::make_shared<DecodedProgram>();
  prog->name = kernel.name;
  prog->threads_per_block = kernel.threads_per_block;
  prog->warps = kernel.warps_per_block();
  prog->vreg_count = std::max(kernel.vreg_count, 1);
  prog->sreg_count = std::max(kernel.sreg_count, 1);
  prog->smem_bytes = std::max(kernel.smem_bytes, 1);
  prog->identity = kernel_identity(kernel, device);

  const std::size_t n = kernel.code.size();
  prog->code.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& ins = kernel.code[i];
    DecodedInstr& d = prog->code[i];
    d.op = ins.op;
    d.cls = classify(ins.op);
    d.lane = lane_of(ins);
    d.cmp = ins.cmp;
    d.width = ins.width;
    d.dst = static_cast<std::int16_t>(ins.dst);
    d.scalar_dst = d.cls == ExecClass::kScalar;
    d.pred = static_cast<std::int16_t>(ins.pred);
    d.pred_negate = ins.pred_negate;
    d.latency = baked_latency(ins.op, device.lat);
    d.a = ins.a;
    d.b = ins.b;
    d.c = ins.c;
    const Operand* ops[3] = {&ins.a, &ins.b, &ins.c};
    for (int k = 0; k < 3; ++k) {
      if (ops[k]->kind == Operand::Kind::kVector) {
        d.rv[static_cast<std::size_t>(k)] = static_cast<std::int16_t>(ops[k]->reg);
      } else if (ops[k]->kind == Operand::Kind::kScalar) {
        d.rs[static_cast<std::size_t>(k)] = static_cast<std::int16_t>(ops[k]->reg);
      }
    }
    if (ins.pred >= 0) {
      d.rv[3] = static_cast<std::int16_t>(ins.pred);
    }
  }

  // Structured-control-flow matching, identical to the legacy
  // build_loop_matches, plus the set of pcs a jump can land on: the first
  // body instruction of each loop and the instruction after each kEndLoop
  // (the zero-trip skip's resume point). Fused groups must not straddle
  // these.
  std::vector<bool> target(n, false);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n; ++i) {
      if (prog->code[i].cls == ExecClass::kLoop) {
        stack.push_back(i);
      } else if (prog->code[i].cls == ExecClass::kEndLoop) {
        util::ensure(!stack.empty(), "decode: unbalanced loops");
        const std::size_t begin = stack.back();
        stack.pop_back();
        prog->code[begin].match = static_cast<std::uint32_t>(i);
        prog->code[i].match = static_cast<std::uint32_t>(begin);
        if (begin + 1 < n) {
          target[begin + 1] = true;
        }
        if (i + 1 < n) {
          target[i + 1] = true;
        }
      }
    }
  }

  mark_fusion(*prog, target);
  mark_vector_metadata(*prog);
  return prog;
}

namespace {

// Decoded-cache instrumentation (visible in --metrics-out dumps). Hits and
// misses are counted per lookup; the occupancy gauges are refreshed on
// every miss and clear — the only events that change them.
obs::Counter& cache_hits() {
  static obs::Counter c("simt.decode_cache.hits");
  return c;
}
obs::Counter& cache_misses() {
  static obs::Counter c("simt.decode_cache.misses");
  return c;
}
obs::Gauge& cache_entries() {
  static obs::Gauge g("simt.decode_cache.entries");
  return g;
}
obs::Gauge& cache_shards_occupied() {
  static obs::Gauge g("simt.decode_cache.shards_occupied");
  return g;
}

}  // namespace

std::shared_ptr<const DecodedProgram> DecodedProgramCache::get(
    const Kernel& kernel, const DeviceSpec& device) {
  const std::uint64_t key = kernel_identity(kernel, device);
  Shard& shard = shards_[shard_of(key)];
  std::shared_ptr<const DecodedProgram> prog;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hit = true;
      prog = it->second;
    } else {
      // Decode under the shard lock: concurrent first uses of one identity
      // must produce exactly one decode (other shards stay available).
      prog = decode_program(kernel, device);
      decodes_.fetch_add(1, std::memory_order_relaxed);
      shard.map.emplace(key, prog);
    }
  }
  if (hit) {
    cache_hits().add();
  } else {
    cache_misses().add();
    if (obs::metrics_enabled()) {
      refresh_occupancy_metrics();
    }
  }
  return prog;
}

void DecodedProgramCache::refresh_occupancy_metrics() const {
  std::size_t entries = 0;
  std::size_t occupied = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    entries += shard.map.size();
    occupied += shard.map.empty() ? 0 : 1;
  }
  cache_entries().set(static_cast<double>(entries));
  cache_shards_occupied().set(static_cast<double>(occupied));
}

std::size_t DecodedProgramCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void DecodedProgramCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  if (obs::metrics_enabled()) {
    refresh_occupancy_metrics();
  }
}

DecodedProgramCache& shared_decoded_cache() {
  static DecodedProgramCache cache;
  return cache;
}

}  // namespace wsim::simt
