// The predecoded fast-path interpreter (see decode.hpp and
// fastpath_engine.hpp, which holds the shared execution core). Executes
// DecodedProgram instruction streams with per-opcode handler dispatch
// (templated lane loops selected from a table instead of a switch inside
// the lane loop), superinstruction handlers for the fused groups the
// decoder marks, and a warp-uniform fast path: validate() guarantees
// threads_per_block is a multiple of 32, so every warp is full and
// unpredicated instructions skip per-lane activity bookkeeping entirely.
//
// This engine uses EngineBase's default dispatch loop unchanged; it exists
// as the concrete instantiation the handler tables bind to, and as the
// reference the lane-vector engine (vectorpath.cpp) is differentially
// tested against.

#include <cstdlib>
#include <string_view>

#include "wsim/simt/fastpath_engine.hpp"

namespace wsim::simt {

InterpPath resolve_interp_path(InterpPath requested) noexcept {
  if (requested != InterpPath::kDefault) {
    return requested;
  }
  const char* env = std::getenv("WSIM_INTERP");
  if (env != nullptr) {
    const std::string_view name(env);
    if (name == "legacy") {
      return InterpPath::kLegacy;
    }
    if (name == "vector") {
      return InterpPath::kVector;
    }
  }
  return InterpPath::kFast;
}

namespace {

struct FastEngine final : fastdetail::EngineBase<FastEngine> {
  using EngineBase::EngineBase;
};

}  // namespace

BlockResult run_block_fast(const DecodedProgram& program, const DeviceSpec& device,
                           GlobalMemory& gmem,
                           std::span<const std::uint64_t> scalar_args,
                           const BlockRunOptions& options) {
  FastEngine engine(program, device, gmem, scalar_args, options);
  return engine.run();
}

}  // namespace wsim::simt
