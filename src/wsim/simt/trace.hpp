#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wsim::simt {

/// One timed instruction (or barrier) occurrence inside a block.
struct TraceEvent {
  std::string name;      ///< opcode mnemonic
  int warp = 0;          ///< warp index within the block
  long long start = 0;   ///< issue cycle
  long long end = 0;     ///< completion cycle
};

/// Execution timeline of one block, recordable by run_block. Intended for
/// debugging and teaching: load the JSON into chrome://tracing or Perfetto
/// to see how warps interleave, where barriers align them, and which
/// dependence chains serialize.
class Trace {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Chrome trace-event format: one complete ("ph":"X") event per
  /// instruction, cycles as microseconds, one row per warp.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace wsim::simt
