#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "wsim/simt/isa.hpp"

namespace wsim::simt {

/// Handle to a virtual vector register produced by KernelBuilder.
struct VReg {
  int id = -1;
  operator Operand() const noexcept { return Operand::vreg(id); }  // NOLINT(google-explicit-constructor)
};

/// Handle to a scalar (block-uniform) register.
struct SReg {
  int id = -1;
  operator Operand() const noexcept { return Operand::sreg(id); }  // NOLINT(google-explicit-constructor)
};

/// Immediate holding a signed integer.
inline Operand imm_i64(std::int64_t value) noexcept {
  return Operand::immediate(static_cast<std::uint64_t>(value));
}

/// Immediate holding an f32 bit pattern (low 32 bits).
inline Operand imm_f32(float value) noexcept {
  return Operand::immediate(std::bit_cast<std::uint32_t>(value));
}

/// Fluent IR builder for simulator kernels. Emits SSA-style virtual
/// registers; build() runs a liveness-based linear-scan register
/// allocator so the resulting Kernel reports a realistic registers/thread
/// figure for the occupancy calculator — reusing registers exactly where
/// a real compiler could.
///
/// Scalar launch parameters: the first `param()` calls return s0, s1, ...
/// in order; at launch each block supplies one value per parameter.
class KernelBuilder {
 public:
  KernelBuilder(std::string name, int threads_per_block);

  // --- resources -------------------------------------------------------
  VReg vreg();                       ///< raw virtual register (rarely needed)
  SReg sreg();                       ///< scratch scalar register
  SReg param();                      ///< next scalar launch parameter
  int alloc_smem(int bytes, int align = 4);  ///< static shared memory, returns byte offset

  // --- identifiers -----------------------------------------------------
  VReg tid();
  VReg laneid();
  VReg warpid();

  // --- moves -----------------------------------------------------------
  VReg mov(Operand src);
  void assign(VReg dst, Operand src);

  // --- f32 arithmetic ----------------------------------------------------
  VReg fadd(Operand a, Operand b);
  VReg fsub(Operand a, Operand b);
  VReg fmul(Operand a, Operand b);
  VReg ffma(Operand a, Operand b, Operand c);
  VReg fmax(Operand a, Operand b);
  VReg fmin(Operand a, Operand b);

  // --- integer arithmetic ------------------------------------------------
  VReg iadd(Operand a, Operand b);
  VReg isub(Operand a, Operand b);
  VReg imul(Operand a, Operand b);
  VReg imax(Operand a, Operand b);
  VReg imin(Operand a, Operand b);
  VReg iand(Operand a, Operand b);
  VReg ior(Operand a, Operand b);
  VReg ixor(Operand a, Operand b);
  VReg shl(Operand a, Operand b);
  VReg shr(Operand a, Operand b);

  // --- compare / select --------------------------------------------------
  VReg setp(Cmp cmp, DType dtype, Operand a, Operand b);
  VReg selp(Operand pred, Operand if_true, Operand if_false);

  // --- warp shuffle ------------------------------------------------------
  VReg shfl(Operand value, Operand src_lane, int width = 32);
  VReg shfl_up(Operand value, Operand delta, int width = 32);
  VReg shfl_down(Operand value, Operand delta, int width = 32);
  VReg shfl_xor(Operand value, Operand lane_mask, int width = 32);

  // --- memory ------------------------------------------------------------
  VReg lds(Operand addr, std::int64_t offset = 0, MemWidth width = MemWidth::kB4);
  void sts(Operand addr, Operand value, std::int64_t offset = 0,
           MemWidth width = MemWidth::kB4);
  VReg ldg(Operand addr, std::int64_t offset = 0, MemWidth width = MemWidth::kB4);
  void stg(Operand addr, Operand value, std::int64_t offset = 0,
           MemWidth width = MemWidth::kB4);

  /// Load into an existing register (used under predication, where the
  /// destination must be pre-initialized for inactive lanes).
  void lds_to(VReg dst, Operand addr, std::int64_t offset = 0,
              MemWidth width = MemWidth::kB4);
  void ldg_to(VReg dst, Operand addr, std::int64_t offset = 0,
              MemWidth width = MemWidth::kB4);

  // --- synchronization -----------------------------------------------------
  void bar();

  // --- scalar arithmetic ---------------------------------------------------
  SReg smov(Operand src);
  SReg sadd(Operand a, Operand b);
  SReg ssub(Operand a, Operand b);
  SReg smul(Operand a, Operand b);
  SReg smin(Operand a, Operand b);
  SReg smax(Operand a, Operand b);
  void sassign(SReg dst, Operand src);

  // --- structured control flow ----------------------------------------------
  void loop(Operand trip_count);  ///< trip count must be scalar or immediate
  void endloop();

  /// All instructions emitted between begin_pred and end_pred execute
  /// under @p (or @!p): inactive lanes skip register writes and memory
  /// side effects, as in PTX predication.
  void begin_pred(VReg pred, bool negate = false);
  void end_pred();

  /// Writes an existing destination with any vector op (mutation form of
  /// the SSA helpers above, used for in-place updates such as the paper's
  /// register rotation reg3 = reg2).
  void emit_to(VReg dst, Op op, Operand a, Operand b = Operand::none(),
               Operand c = Operand::none());

  /// Low-level escape hatch returning a fresh destination register.
  VReg emit(Op op, Operand a, Operand b = Operand::none(),
            Operand c = Operand::none());

  /// Finalizes the kernel: validates structure, allocates physical
  /// registers, and returns the compiled Kernel.
  Kernel build();

 private:
  void push(Instr instr);
  VReg emit_val(Op op, Operand a, Operand b = Operand::none(),
                Operand c = Operand::none());
  SReg emit_scalar(Op op, Operand a, Operand b = Operand::none());

  Kernel kernel_;
  int next_vreg_ = 0;
  int next_sreg_ = 0;
  int smem_cursor_ = 0;
  int loop_depth_ = 0;
  int cur_pred_ = -1;
  bool cur_pred_negate_ = false;
  bool built_ = false;
};

}  // namespace wsim::simt
