#include "wsim/simt/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/simt/decode.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/simt/trace.hpp"
#include "wsim/util/check.hpp"

namespace wsim::simt {

namespace {

/// splitmix64 finalizer: spreads composite cache keys across shards and
/// hash buckets.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

int threads_from_env() {
  const char* env = std::getenv("WSIM_THREADS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  return 0;  // one per hardware thread
}

}  // namespace

std::optional<BlockCost> ShardedBlockCostCache::find(std::uint64_t key) const {
  const Shard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ShardedBlockCostCache::insert(std::uint64_t key, const BlockCost& cost) {
  Shard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(key, cost);
}

std::size_t ShardedBlockCostCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

void ShardedBlockCostCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

ExecutionEngine::ExecutionEngine(EngineOptions options)
    : options_(options), pool_(options.threads) {}

LaunchResult ExecutionEngine::launch(const Kernel& kernel, const DeviceSpec& device,
                                     GlobalMemory& gmem,
                                     std::span<const BlockLaunch> blocks,
                                     const LaunchOptions& options) {
  util::require(!blocks.empty(), "launch: grid must contain at least one block");
  util::require(!(options.cost_cache != nullptr && options.use_engine_cache),
                "launch: cost_cache and use_engine_cache are mutually exclusive");
  util::require(!options.sdc.enabled() || options.mode == ExecMode::kFull,
                "launch: SDC injection requires ExecMode::kFull — injecting into a "
                "shape-cached launch would poison the shared cost cache");

  LaunchResult result;
  result.occupancy = compute_occupancy(device, kernel);

  // Resolve the interpreter path once per launch; on the predecoded paths
  // (fast and vector) the (kernel, device) pair is predecoded here —
  // through the process-wide cache — and every block below reuses the
  // same DecodedProgram.
  const InterpPath path = resolve_interp_path(options.interp);
  std::shared_ptr<const DecodedProgram> decoded;
  if (path == InterpPath::kFast || path == InterpPath::kVector) {
    static obs::Counter c_decode_misses("engine.decode_misses");
    if (obs::tracing_enabled() || obs::metrics_enabled()) {
      const std::size_t before = shared_decoded_cache().size();
      decoded = shared_decoded_cache().get(kernel, device);
      if (shared_decoded_cache().size() != before) {
        c_decode_misses.add();
        obs::instant(obs::sim_time(), obs::Layer::kEngine, "engine.decode_miss");
      }
    } else {
      decoded = shared_decoded_cache().get(kernel, device);
    }
  }

  const std::size_t n = blocks.size();
  const bool cached_mode = options.mode == ExecMode::kCachedByShape;
  BlockCostCache local_cache;
  BlockCostCache* plain_cache = nullptr;
  std::uint64_t identity = 0;
  if (cached_mode) {
    if (options.use_engine_cache) {
      // The decoded program already carries the content hash; only the
      // legacy path recomputes it. The interpreter path salts the key:
      // the engines are bit-identical by contract, but letting a cached
      // fast-path cost stand in for a vector-path execution would mask
      // any divergence from differential A/B runs.
      identity = decoded != nullptr ? decoded->identity
                                    : kernel_identity(kernel, device);
      identity = mix(identity ^ (static_cast<std::uint64_t>(path) + 1));
    } else {
      plain_cache = options.cost_cache != nullptr ? options.cost_cache : &local_cache;
    }
  }
  const auto engine_key = [&](std::uint64_t shape) {
    return mix(identity ^ mix(shape));
  };

  // --- plan (host thread, grid order): decide which blocks execute -------
  // kFull: all of them. kCachedByShape: the first block of each shape not
  // already memoized — so exactly one worker executes each distinct shape
  // and the choice is identical to what the sequential loop made.
  std::vector<std::size_t> execute;  // ascending block indices
  std::vector<std::ptrdiff_t> exec_slot(n, -1);
  std::unordered_map<std::uint64_t, BlockCost> preseeded;
  std::unordered_map<std::uint64_t, std::size_t> shape_executor;
  if (!cached_mode) {
    execute.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      execute[i] = i;
      exec_slot[i] = static_cast<std::ptrdiff_t>(i);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = blocks[i].shape_key;
      if (preseeded.count(key) != 0 || shape_executor.count(key) != 0) {
        continue;
      }
      std::optional<BlockCost> hit;
      if (plain_cache != nullptr) {
        const auto it = plain_cache->find(key);
        if (it != plain_cache->end()) {
          hit = it->second;
        }
      } else {
        hit = cost_cache_.find(engine_key(key));
      }
      if (hit.has_value()) {
        preseeded.emplace(key, *hit);
      } else {
        shape_executor.emplace(key, i);
        exec_slot[i] = static_cast<std::ptrdiff_t>(execute.size());
        execute.push_back(i);
      }
    }
  }

  // --- execute (worker pool): blocks are independent, results land in ----
  // slot-indexed vectors so aggregation below sees grid order.
  std::vector<BlockResult> executed(execute.size());
  std::vector<GmemWriteSet> writes(
      options_.check_write_overlap ? execute.size() : 0);
  const bool inject = options.sdc.enabled();
  const std::uint64_t device_hash = inject ? sdc_device_hash(device.name) : 0;
  pool_.parallel_for(execute.size(), [&](std::size_t slot) {
    const std::size_t i = execute[slot];
    BlockRunOptions run_options;
    run_options.trace = slot == 0 ? options.trace_representative : nullptr;
    run_options.writes = options_.check_write_overlap ? &writes[slot] : nullptr;
    run_options.sdc = inject ? &options.sdc : nullptr;
    // Stream keyed by the *grid* index, so a block's flips don't depend on
    // which other blocks the cache happened to skip.
    run_options.sdc_stream =
        inject ? sdc_stream(device_hash, options.sdc_launch_id, i) : 0;
    run_options.max_cycles = options.max_block_cycles;
    run_options.interp = path;
    run_options.decoded = decoded.get();
    executed[slot] = run_block(kernel, device, gmem, blocks[i].args, run_options);
  });

  if (options_.check_write_overlap) {
    check_overlaps(kernel, execute, writes);
  }

  // --- aggregate (host thread, grid order): bit-identical to sequential --
  if (!execute.empty()) {
    result.representative = executed[0];
  }
  result.blocks_executed = execute.size();
  std::vector<BlockCost> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (exec_slot[i] >= 0) {
      const BlockResult& res = executed[static_cast<std::size_t>(exec_slot[i])];
      BlockCost& cost = costs[i];
      cost.latency_cycles = res.cycles;
      cost.issue_slots = res.instructions;
      cost.smem_transactions = res.smem_transactions;
      result.instructions += res.instructions;
      result.smem_transactions += res.smem_transactions;
      result.sdc_flips += res.sdc_flips;
    } else {
      // Reused shape: cost from a pre-launch cache hit or from this
      // launch's executor (always at a lower grid index).
      const std::uint64_t key = blocks[i].shape_key;
      const auto pre = preseeded.find(key);
      const BlockCost& cost =
          pre != preseeded.end() ? pre->second : costs[shape_executor.at(key)];
      costs[i] = cost;
      // The skipped block would have issued the same instruction mix.
      result.instructions += cost.issue_slots;
      result.smem_transactions += cost.smem_transactions;
    }
  }

  // --- commit fresh costs (host thread, grid order) ----------------------
  for (const std::size_t i : execute) {
    if (!cached_mode) {
      break;
    }
    const std::uint64_t key = blocks[i].shape_key;
    const BlockCost& cost = costs[i];
    if (plain_cache != nullptr) {
      plain_cache->emplace(key, cost);
    } else {
      cost_cache_.insert(engine_key(key), cost);
    }
  }

  result.timing = schedule_blocks(device, result.occupancy, costs);
  result.kernel_seconds = result.timing.seconds;

  const double pcie_bytes_per_second = device.pcie_bw_gbps * 1e9;
  if (options.transfer.h2d_bytes > 0) {
    result.h2d_seconds =
        static_cast<double>(options.transfer.h2d_bytes) / pcie_bytes_per_second +
        device.pcie_latency_us * 1e-6;
  }
  if (options.transfer.d2h_bytes > 0) {
    result.d2h_seconds =
        static_cast<double>(options.transfer.d2h_bytes) / pcie_bytes_per_second +
        device.pcie_latency_us * 1e-6;
  }
  result.transfer_seconds = result.h2d_seconds + result.d2h_seconds;
  result.overhead_seconds = device.kernel_launch_overhead_us * 1e-6;
  result.transfers_overlapped = options.overlap_transfers;

  static obs::Counter c_launches("engine.launches");
  static obs::Counter c_blocks("engine.blocks_executed");
  static obs::Histogram h_kernel_seconds("engine.kernel_seconds");
  c_launches.add();
  c_blocks.add(result.blocks_executed);
  h_kernel_seconds.observe(result.kernel_seconds);
  obs::instant(obs::sim_time(), obs::Layer::kEngine, "engine.launch", -1, 0,
               static_cast<double>(result.blocks_executed),
               result.kernel_seconds);
  return result;
}

void ExecutionEngine::check_overlaps(const Kernel& kernel,
                                     const std::vector<std::size_t>& execute,
                                     const std::vector<GmemWriteSet>& writes) {
  // Sweep all written spans in address order: any two spans from different
  // blocks that intersect violate the race-free contract.
  struct Span {
    std::int64_t begin;
    std::int64_t end;
    std::size_t block;
  };
  std::vector<Span> spans;
  for (std::size_t slot = 0; slot < writes.size(); ++slot) {
    for (const auto& [begin, end] : writes[slot].spans()) {
      spans.push_back({begin, end, execute[slot]});
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.begin != y.begin ? x.begin < y.begin : x.block < y.block;
  });
  for (std::size_t s = 1; s < spans.size(); ++s) {
    const Span& prev = spans[s - 1];
    const Span& cur = spans[s];
    if (cur.begin < prev.end && cur.block != prev.block) {
      throw util::CheckError(
          "write overlap in kernel '" + kernel.name + "': blocks " +
          std::to_string(prev.block) + " and " + std::to_string(cur.block) +
          " both wrote global memory bytes [" +
          std::to_string(std::max(prev.begin, cur.begin)) + ", " +
          std::to_string(std::min(prev.end, cur.end)) +
          ") — blocks of one launch must write disjoint ranges");
    }
  }
}

ExecutionEngine& shared_engine() {
  static ExecutionEngine engine(EngineOptions{.threads = threads_from_env()});
  return engine;
}

}  // namespace wsim::simt
