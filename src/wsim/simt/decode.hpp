#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "wsim/simt/device.hpp"
#include "wsim/simt/isa.hpp"

namespace wsim::simt {

/// Content hash identifying a (kernel, device) pair: kernel name, shape,
/// every instruction, the device name, and the device's latency table.
/// Used to key both the engine's block-cost cache and the decoded-program
/// cache, so neither can alias entries across kernels or architectures.
std::uint64_t kernel_identity(const Kernel& kernel, const DeviceSpec& device);

/// Dispatch class of a decoded instruction: which fast-path handler
/// executes it. Decoding collapses the ISA's per-opcode semantics into a
/// small set of execution shapes so the interpreter's hot loop dispatches
/// once per instruction instead of switching per lane.
enum class ExecClass : std::uint8_t {
  kSimple,   ///< per-lane pure op (moves, ALU, compare, select) — see LaneOp
  kScalar,   ///< block-uniform scalar op (kSMov..kSMax), one execution per warp
  kShuffle,  ///< cross-lane shuffle (4 variants)
  kLds,
  kSts,
  kLdg,
  kStg,
  kBar,
  kLoop,
  kEndLoop,
};

/// Per-lane pure operation of an ExecClass::kSimple instruction, resolved
/// at decode time (kSetp splits into its two data types; the comparison
/// predicate stays in DecodedInstr::cmp).
enum class LaneOp : std::uint8_t {
  kNop,
  kMov,
  kTid,
  kLaneId,
  kWarpId,
  kFAdd,
  kFSub,
  kFMul,
  kFFma,
  kFMax,
  kFMin,
  kIAdd,
  kISub,
  kIMul,
  kIMax,
  kIMin,
  kIAnd,
  kIOr,
  kIXor,
  kShl,
  kShr,
  kSetpF32,
  kSetpI64,
  kSelp,
  kCount,
};

constexpr std::size_t kNumLaneOps = static_cast<std::size_t>(LaneOp::kCount);

/// Superinstruction kind of a fused group leader. A fused group is a run
/// of `fuse_len` consecutive instructions executed by one handler call:
/// the constituents keep their individual issue slots, latencies, counter
/// increments, and register writes (the timing model and BlockResult are
/// bit-identical), but share one dispatch, one active-mask computation,
/// and one pass over the lanes.
enum class FusedKind : std::uint8_t {
  kNone,
  kSimplePair,   ///< two kSimple ops, value-forwarded through one lane loop
  kShflAlu,      ///< shuffle feeding a kSimple consumer (wavefront update)
  kShflAluMov,   ///< shuffle + consumer + kMov (the builder's assign idiom)
  kSmemPair,     ///< two shared-memory ops under one predicate mask
};

/// The simple-op pairs the fast path has a specialized fused handler for.
/// Decode only marks FusedKind::kSimplePair when this holds, so the
/// matcher and the handler table stay in sync. The set covers the idioms
/// the SW/NW/PairHMM builders emit: fadd/fmul feeding fma-style chains,
/// compare→select (kSetp→kSelp) wavefront updates, and op→kMov copies
/// from KernelBuilder::assign.
constexpr bool fusible_simple_pair(LaneOp a, LaneOp b) noexcept {
  const bool a_alu = a == LaneOp::kFAdd || a == LaneOp::kFSub ||
                     a == LaneOp::kFMul || a == LaneOp::kFFma ||
                     a == LaneOp::kFMax || a == LaneOp::kFMin ||
                     a == LaneOp::kIAdd || a == LaneOp::kISub ||
                     a == LaneOp::kIMul || a == LaneOp::kIMax ||
                     a == LaneOp::kIMin || a == LaneOp::kIAnd ||
                     a == LaneOp::kIOr || a == LaneOp::kIXor ||
                     a == LaneOp::kSelp;
  if (b == LaneOp::kMov) {
    return a_alu || a == LaneOp::kMov;
  }
  if (b == LaneOp::kSelp) {
    return a == LaneOp::kSetpF32 || a == LaneOp::kSetpI64;
  }
  const bool b_f32 = b == LaneOp::kFAdd || b == LaneOp::kFMul ||
                     b == LaneOp::kFFma || b == LaneOp::kFMax ||
                     b == LaneOp::kFMin;
  if (a == LaneOp::kFAdd || a == LaneOp::kFMul || a == LaneOp::kFFma) {
    return b_f32;
  }
  if (a == LaneOp::kIAdd) {
    return b == LaneOp::kIAdd || b == LaneOp::kIMax || b == LaneOp::kIMin;
  }
  return false;
}

/// Simple ops a fused shuffle group may feed (the shfl→max/min/mul/add
/// wavefront updates of the SW/PairHMM register designs).
constexpr bool fusible_shfl_consumer(LaneOp op) noexcept {
  return op == LaneOp::kFMul || op == LaneOp::kFAdd || op == LaneOp::kFMax ||
         op == LaneOp::kFMin || op == LaneOp::kIMax || op == LaneOp::kIMin ||
         op == LaneOp::kIAdd;
}

/// One predecoded instruction: operand kinds resolved, scoreboard inputs
/// (which vector/scalar ready cells gate issue) flattened, the dependent
/// latency baked in from the device's latency table, and structured
/// control flow pre-matched. Mirrors Kernel::code one-to-one so program
/// counters and loop targets carry over unchanged.
struct DecodedInstr {
  Op op = Op::kNop;            ///< original opcode (counters, trace)
  ExecClass cls = ExecClass::kSimple;
  LaneOp lane = LaneOp::kNop;  ///< kSimple payload
  Cmp cmp = Cmp::kLt;
  MemWidth width = MemWidth::kB4;
  std::int16_t dst = -1;
  bool scalar_dst = false;     ///< dst indexes the scalar register file
  std::int16_t pred = -1;
  bool pred_negate = false;
  FusedKind fused = FusedKind::kNone;  ///< set on group leaders only
  std::uint8_t fuse_len = 1;           ///< instructions in the fused group
  /// Lane-vectorizable: an unpredicated kSimple (lane != kNop) or
  /// unpredicated kShuffle, i.e. the vector engine computes all 32 lanes
  /// in SIMD form instead of a per-lane loop.
  bool vec = false;
  /// Masked-vectorizable: a predicated kSimple whose lane op is pure, so
  /// the vector engine computes all 32 lanes in SIMD form and blends the
  /// result into the destination under the predicate mask (inactive lanes
  /// keep their old bits, exactly like the per-lane fallback).
  bool vec_masked = false;
  /// kLoop leaders only: index into DecodedProgram::accel_loops when the
  /// loop body is eligible for the vector engine's steady-state
  /// fast-forward; -1 otherwise.
  std::int16_t accel = -1;
  std::int32_t latency = 0;    ///< baked base latency (kLdg resolves per access)
  std::uint32_t match = 0;     ///< matching kLoop/kEndLoop pc
  Operand a;
  Operand b;
  Operand c;
  /// Vector registers whose ready cycle gates issue: a, b, c, pred
  /// (-1 = not a vector register).
  std::array<std::int16_t, 4> rv{{-1, -1, -1, -1}};
  /// Scalar registers gating issue: a, b, c (-1 = not a scalar register).
  std::array<std::int16_t, 3> rs{{-1, -1, -1}};
};

/// A kernel compiled for one device architecture: validated once, operand
/// and latency resolution done once, superinstructions fused once — then
/// reused by every block, launch, engine worker, fleet worker, and serving
/// loop that executes this (kernel, device) pair.
struct DecodedProgram {
  /// Register-usage summary of one loop whose body the vector engine may
  /// fast-forward (see DecodedInstr::accel and vectorpath.cpp). A loop is
  /// eligible when its body contains only kSimple/kShuffle/kScalar/kLds/
  /// kSts instructions — plus kBar when the program has a single warp, in
  /// which case the barrier degenerates to a fixed cursor bump (no nested
  /// loops or global memory): for
  /// such a body the per-iteration timing profile is a pure function of
  /// the warp's timing state relative to its own cursor plus the
  /// shared-memory replay cycles, so once two consecutive iterations
  /// produce identical relative profiles, the remaining iterations can run
  /// value-only with the timing deltas replayed — bit-identically.
  struct AccelLoop {
    std::uint32_t begin = 0;  ///< pc of the kLoop instruction
    /// Vector/scalar registers written by a body instruction (finish()
    /// rewrites their ready cells every iteration, so the fast-forward
    /// shifts them by the steady per-iteration delta).
    std::vector<std::int16_t> vregs_written;
    std::vector<std::int16_t> sregs_written;
    /// Registers the body reads but never writes: their ready cells stay
    /// frozen, so they only gate issue while still in flight (the steady
    /// check clamps them at "ready in the past").
    std::vector<std::int16_t> vregs_read;
    std::vector<std::int16_t> sregs_read;
    /// Per body instruction (pc - begin - 1): true when the instruction's
    /// predicate register is not written inside the body, i.e. the active
    /// mask is loop-invariant during the fast-forwarded iterations.
    std::vector<std::uint8_t> pred_stable;
  };

  std::string name;
  int threads_per_block = 32;
  int warps = 1;
  int vreg_count = 1;   ///< clamped to >= 1, like the legacy interpreter
  int sreg_count = 1;
  int smem_bytes = 1;
  std::uint64_t identity = 0;   ///< kernel_identity(kernel, device)
  std::size_t fused_groups = 0; ///< superinstructions formed (stats/tests)
  std::size_t vec_instrs = 0;   ///< instructions with vec or vec_masked set
  std::vector<AccelLoop> accel_loops;
  std::vector<DecodedInstr> code;
};

/// Predecodes `kernel` for `device`: runs validate() once, bakes latencies
/// from the device's latency table, flattens operand/scoreboard metadata,
/// and fuses superinstruction groups. Throws util::CheckError on malformed
/// kernels (exactly the kernels the legacy interpreter rejects per block).
std::shared_ptr<const DecodedProgram> decode_program(const Kernel& kernel,
                                                     const DeviceSpec& device);

/// Thread-safe decoded-program store, sharded like ShardedBlockCostCache
/// so concurrent engine workers, fleet workers, and serving threads do not
/// serialize on one mutex. Decoding happens under the key's shard lock, so
/// each (kernel, device) identity is decoded exactly once per process no
/// matter how many threads race on first use (pinned by decode_cache_test
/// under TSan).
class DecodedProgramCache {
 public:
  /// Returns the cached program, decoding on first use.
  std::shared_ptr<const DecodedProgram> get(const Kernel& kernel,
                                            const DeviceSpec& device);

  /// Distinct (kernel, device) programs currently cached.
  std::size_t size() const;

  /// Total decode_program invocations this cache performed (a cache that
  /// works never decodes one identity twice).
  std::uint64_t decode_count() const noexcept {
    return decodes_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  /// Re-publishes the entry-count and shards-occupied obs gauges (called
  /// on miss and clear, the only occupancy-changing events).
  void refresh_occupancy_metrics() const;

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<const DecodedProgram>> map;
  };
  static std::size_t shard_of(std::uint64_t key) noexcept {
    return static_cast<std::size_t>(key >> 59) % kShards;
  }
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> decodes_{0};
};

/// The process-wide decoded-program cache used by the fast interpreter
/// path (run_block and every ExecutionEngine launch).
DecodedProgramCache& shared_decoded_cache();

}  // namespace wsim::simt
