#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsim::simt {

/// The simulator's SASS-like instruction set. Kernels are lists of these
/// instructions, executed by every thread of a block in SIMT lockstep
/// (warp granularity). Registers hold 64 raw bits; f32 opcodes interpret
/// the low 32 bits as an IEEE float, integer opcodes interpret all 64 bits
/// as a signed integer.
enum class Op : std::uint8_t {
  kNop,
  // --- moves / identifiers ---
  kMov,      ///< dst = a                        (vector)
  kTid,      ///< dst = threadIdx.x              (vector)
  kLaneId,   ///< dst = lane index within warp   (vector)
  kWarpId,   ///< dst = warp index within block  (vector)
  // --- f32 arithmetic ---
  kFAdd,     ///< dst = a + b
  kFSub,     ///< dst = a - b
  kFMul,     ///< dst = a * b
  kFFma,     ///< dst = a * b + c
  kFMax,     ///< dst = max(a, b)
  kFMin,     ///< dst = min(a, b)
  // --- integer arithmetic (64-bit signed) ---
  kIAdd,     ///< dst = a + b
  kISub,     ///< dst = a - b
  kIMul,     ///< dst = a * b
  kIMax,     ///< dst = max(a, b)
  kIMin,     ///< dst = min(a, b)
  kIAnd,     ///< dst = a & b
  kIOr,      ///< dst = a | b
  kIXor,     ///< dst = a ^ b
  kShl,      ///< dst = a << b
  kShr,      ///< dst = a >> b (arithmetic)
  // --- compare / select ---
  kSetp,     ///< dst = (a <cmp> b) ? 1 : 0, type from `dtype`
  kSelp,     ///< dst = (c != 0) ? a : b
  // --- warp shuffle (paper Fig. 1) ---
  kShfl,        ///< dst = value of lane b (any-to-any, wraps modulo width c)
  kShflUp,      ///< dst = value of lane (lane - b); keeps own value if lane < b
  kShflDown,    ///< dst = value of lane (lane + b); keeps own value if out of segment
  kShflXor,     ///< dst = value of lane (lane ^ b) within width c
  // --- memory ---
  kLds,      ///< dst = shared[a + b]   (byte address; width from `width`)
  kSts,      ///< shared[a + b] = c
  kLdg,      ///< dst = global[a + b]
  kStg,      ///< global[a + b] = c
  // --- synchronization ---
  kBar,      ///< __syncthreads()
  // --- scalar (block-uniform) arithmetic ---
  kSMov,     ///< sdst = a
  kSAdd,     ///< sdst = a + b
  kSSub,     ///< sdst = a - b
  kSMul,     ///< sdst = a * b
  kSMin,     ///< sdst = min(a, b)
  kSMax,     ///< sdst = max(a, b)
  // --- structured control flow ---
  kLoop,     ///< repeat the region until matching kEndLoop `a` times (scalar/imm)
  kEndLoop,  ///< end of loop region
  kOpCount,  ///< sentinel: number of opcodes
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kOpCount);

std::string_view to_string(Op op) noexcept;

/// Comparison predicate for kSetp.
enum class Cmp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// Data interpretation for kSetp.
enum class DType : std::uint8_t { kF32, kI64 };

/// Memory access width for kLds/kSts/kLdg/kStg. One-byte loads
/// zero-extend (sequence characters); four-byte loads sign-extend to 64
/// bits so stored negative i32 DP scores survive the round trip (f32
/// consumers only read the low 32 bits, so they are unaffected).
enum class MemWidth : std::uint8_t { kB1, kB4 };

/// Operand: a vector register (per-lane), a scalar register
/// (block-uniform), or an immediate (raw 64 bits).
struct Operand {
  enum class Kind : std::uint8_t { kNone, kVector, kScalar, kImmediate };
  Kind kind = Kind::kNone;
  int reg = -1;
  std::uint64_t imm = 0;

  static Operand none() noexcept { return {}; }
  static Operand vreg(int id) noexcept { return {Kind::kVector, id, 0}; }
  static Operand sreg(int id) noexcept { return {Kind::kScalar, id, 0}; }
  static Operand immediate(std::uint64_t bits) noexcept {
    return {Kind::kImmediate, -1, bits};
  }
};

/// One instruction. `dst` is a vector-register id for vector ops and a
/// scalar-register id for scalar ops (-1 when the op produces no value).
/// `pred` optionally guards the instruction: lanes whose predicate vector
/// register is zero (or non-zero when `pred_negate`) skip the write and
/// any memory side effect, exactly like PTX @p predication. The warp still
/// pays the instruction's issue slot and latency (SIMT execution).
struct Instr {
  Op op = Op::kNop;
  int dst = -1;
  Operand a;
  Operand b;
  Operand c;
  Cmp cmp = Cmp::kLt;
  DType dtype = DType::kI64;
  MemWidth width = MemWidth::kB4;
  int pred = -1;
  bool pred_negate = false;
};

/// A compiled kernel: the instruction list plus the static resources that
/// feed the occupancy calculator (paper Eq. 8). `vreg_count` plays the
/// role of nvcc's reported registers/thread; `smem_bytes` is the static
/// shared-memory allocation per block.
struct Kernel {
  std::string name;
  std::vector<Instr> code;
  int threads_per_block = 32;
  int vreg_count = 0;
  int sreg_count = 0;
  int smem_bytes = 0;

  int warps_per_block() const noexcept { return (threads_per_block + 31) / 32; }
};

/// Structural validation: balanced loops, register ids in range, operand
/// kinds legal for each opcode. Throws util::CheckError on violations.
void validate(const Kernel& kernel);

/// Human-readable disassembly (one instruction per line), for debugging
/// and golden tests.
std::string disassemble(const Kernel& kernel);

}  // namespace wsim::simt
