#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "wsim/simt/runtime.hpp"
#include "wsim/util/thread_pool.hpp"

namespace wsim::simt {

/// Thread-safe block-cost memoization shared across launches: a fixed
/// number of independently locked shards so concurrent lookups from the
/// engine's workers do not serialize on one mutex. Keys are already
/// composite hashes (kernel identity ^ device ^ shape key), computed by
/// the engine.
class ShardedBlockCostCache {
 public:
  std::optional<BlockCost> find(std::uint64_t key) const;
  void insert(std::uint64_t key, const BlockCost& cost);
  std::size_t size() const;
  void clear();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, BlockCost> map;
  };
  static std::size_t shard_of(std::uint64_t key) noexcept {
    // High bits: the low bits already pick the bucket inside the shard map.
    return static_cast<std::size_t>(key >> 59) % kShards;
  }
  std::array<Shard, kShards> shards_;
};

struct EngineOptions {
  /// Worker threads for block execution; <= 0 means one per hardware
  /// thread (util::ThreadPool::resolve).
  int threads = 0;
  /// Debug mode: record every executed block's global-memory write ranges
  /// and throw util::CheckError when two blocks of one launch overlap —
  /// verifying the interpreter's "correct kernels are race-free" contract
  /// instead of trusting it.
  bool check_write_overlap = false;
};

/// Executes launch grids on a persistent worker pool.
///
/// Blocks of a launch are independent by construction (the interpreter's
/// contract), so the engine dispatches them across threads and
/// re-aggregates deterministically: per-block costs land in a pre-sized
/// vector indexed by block position (schedule_blocks sees exactly the
/// sequential order), the representative block is the first executed one
/// in grid order, and in kCachedByShape mode exactly one worker — the
/// first block of each distinct shape — executes while the rest reuse the
/// measured cost. Results are therefore bit-identical to sequential
/// execution at any thread count.
///
/// Ownership: the engine owns the thread pool and the sharded cross-launch
/// cost cache; callers own kernels, devices, and memory arenas. One engine
/// is meant to be shared by all runners of a program (see shared_engine()),
/// so launches pay no per-launch thread setup.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineOptions options = {});

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Executors used for block dispatch (>= 1).
  int threads() const noexcept { return pool_.size(); }

  const EngineOptions& options() const noexcept { return options_; }

  /// Drop-in equivalent of simt::launch (same semantics, same results).
  LaunchResult launch(const Kernel& kernel, const DeviceSpec& device,
                      GlobalMemory& gmem, std::span<const BlockLaunch> blocks,
                      const LaunchOptions& options = {});

  /// Entries currently memoized in the engine-owned cache
  /// (LaunchOptions::use_engine_cache).
  std::size_t cost_cache_size() const { return cost_cache_.size(); }
  void clear_cost_cache() { cost_cache_.clear(); }

 private:
  static void check_overlaps(const Kernel& kernel,
                             const std::vector<std::size_t>& execute,
                             const std::vector<class GmemWriteSet>& writes);

  EngineOptions options_;
  util::ThreadPool pool_;
  ShardedBlockCostCache cost_cache_;
};

/// The process-wide default engine used by the simt::launch wrapper.
/// Thread count comes from the WSIM_THREADS environment variable when set
/// (a positive integer), otherwise one worker per hardware thread.
ExecutionEngine& shared_engine();

}  // namespace wsim::simt
