#include "wsim/simt/profile.hpp"

#include <sstream>

#include "wsim/simt/occupancy.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/table.hpp"

namespace wsim::simt {

ProfileReport profile_block(const Kernel& kernel, const DeviceSpec& device,
                            const BlockResult& block, std::size_t cells) {
  ProfileReport r;
  r.kernel_name = kernel.name;
  r.threads_per_block = kernel.threads_per_block;
  r.regs_per_thread = kernel.vreg_count;
  r.smem_bytes = kernel.smem_bytes;
  const Occupancy occ = compute_occupancy(device, kernel);
  r.occupancy = occ.fraction;
  r.occupancy_limiter = std::string(to_string(occ.limiter));

  r.cycles = block.cycles;
  r.instructions = block.instructions;
  r.ipc = block.cycles > 0
              ? static_cast<double>(block.instructions) / static_cast<double>(block.cycles)
              : 0.0;

  r.shuffle_ops = block.shuffle_count();
  r.smem_ops = block.smem_instr_count();
  r.gmem_ops = block.count(Op::kLdg) + block.count(Op::kStg);
  r.barriers = block.count(Op::kBar);
  r.alu_ops = block.instructions - r.shuffle_ops - r.smem_ops - r.gmem_ops -
              r.barriers;
  r.smem_transactions = block.smem_transactions;
  r.gmem_transactions = block.gmem_transactions;
  r.bank_conflict_ratio =
      r.smem_ops > 0 ? static_cast<double>(block.smem_transactions) /
                           static_cast<double>(r.smem_ops)
                     : 0.0;

  r.cells = cells;
  if (cells > 0) {
    r.instructions_per_cell =
        static_cast<double>(block.instructions) / static_cast<double>(cells);
    r.cycles_per_cell =
        static_cast<double>(block.cycles) / static_cast<double>(cells);
  }
  return r;
}

std::string format_profile(const ProfileReport& r) {
  std::ostringstream oss;
  oss << "=== profile: " << r.kernel_name << " ===\n";
  util::Table resources({"threads/block", "regs/thread", "smem/block (B)",
                         "occupancy", "limiter"});
  resources.add_row({std::to_string(r.threads_per_block),
                     std::to_string(r.regs_per_thread), std::to_string(r.smem_bytes),
                     util::format_percent(r.occupancy), r.occupancy_limiter});
  resources.print(oss);

  util::Table execution({"cycles", "warp instrs", "IPC", "instrs/cell",
                         "cycles/cell"});
  execution.add_row({std::to_string(r.cycles), std::to_string(r.instructions),
                     util::format_fixed(r.ipc, 2),
                     util::format_fixed(r.instructions_per_cell, 2),
                     util::format_fixed(r.cycles_per_cell, 2)});
  execution.print(oss);

  util::Table mix({"ALU", "shuffle", "smem ops", "smem tx", "conflict ratio",
                   "gmem ops", "gmem tx", "barriers"});
  mix.add_row({std::to_string(r.alu_ops), std::to_string(r.shuffle_ops),
               std::to_string(r.smem_ops), std::to_string(r.smem_transactions),
               util::format_fixed(r.bank_conflict_ratio, 2),
               std::to_string(r.gmem_ops), std::to_string(r.gmem_transactions),
               std::to_string(r.barriers)});
  mix.print(oss);
  return oss.str();
}

}  // namespace wsim::simt
