#pragma once

#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"

namespace wsim::simt {

/// Per-event dynamic energy in picojoules, at warp granularity (one
/// warp-wide instruction or memory transaction). The defaults are
/// order-of-magnitude figures for a 28 nm GPU (Maxwell class), following
/// the standard energy hierarchy the paper's introduction appeals to:
/// moving data costs far more than computing on it, and the cost grows
/// with distance (register < shuffle < shared memory < DRAM).
struct EnergyTable {
  double alu_pj = 60.0;           ///< warp-wide arithmetic/logic/select
  double shuffle_pj = 90.0;       ///< warp-wide register exchange via the crossbar
  double smem_transaction_pj = 220.0;  ///< one 128 B shared-memory transaction
  double gmem_transaction_pj = 2600.0; ///< one 128 B DRAM segment access
  double sync_pj = 120.0;         ///< barrier bookkeeping per block
  double idle_w_per_sm = 0.55;    ///< static power burned per SM while the kernel runs
};

/// Energy attributed to one executed block (dynamic) or one launch
/// (dynamic + static over the kernel runtime).
struct EnergyEstimate {
  double dynamic_pj = 0.0;
  double static_pj = 0.0;
  double total_pj() const noexcept { return dynamic_pj + static_pj; }
  double total_joules() const noexcept { return total_pj() * 1e-12; }
};

/// Dynamic energy of one block from its instruction/transaction counts.
EnergyEstimate block_energy(const BlockResult& block, const EnergyTable& table);

/// Launch-level energy: per-block dynamic energy summed over `blocks`
/// identical blocks plus static power integrated over `kernel_seconds`
/// across the whole device.
EnergyEstimate launch_energy(const BlockResult& representative, std::size_t blocks,
                             double kernel_seconds, const DeviceSpec& device,
                             const EnergyTable& table = {});

/// Convenience: picojoules per DP cell update, the energy analogue of
/// CUPS.
double energy_per_cell_pj(const EnergyEstimate& energy, std::size_t cells);

}  // namespace wsim::simt
