#include "wsim/simt/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "wsim/util/check.hpp"

namespace wsim::simt {

std::string_view to_string(Occupancy::Limiter limiter) noexcept {
  switch (limiter) {
    case Occupancy::Limiter::kRegisters:
      return "registers";
    case Occupancy::Limiter::kSharedMemory:
      return "shared memory";
    case Occupancy::Limiter::kThreads:
      return "threads";
    case Occupancy::Limiter::kBlockSlots:
      return "block slots";
  }
  return "unknown";
}

namespace {

int round_up(int value, int granularity) noexcept {
  return (value + granularity - 1) / granularity * granularity;
}

}  // namespace

Occupancy compute_occupancy(const DeviceSpec& device, int threads_per_block,
                            int regs_per_thread, int smem_bytes_per_block) {
  util::require(threads_per_block > 0 && threads_per_block % device.warp_size == 0,
                "occupancy: threads_per_block must be a positive multiple of the warp size");
  util::require(regs_per_thread >= 0, "occupancy: negative register count");
  util::require(regs_per_thread <= device.max_registers_per_thread,
                "occupancy: kernel exceeds the per-thread register limit");
  util::require(smem_bytes_per_block >= 0, "occupancy: negative shared memory");
  util::require(smem_bytes_per_block <= device.shared_mem_per_block,
                "occupancy: kernel exceeds the per-block shared-memory limit");

  const int warps_per_block = threads_per_block / device.warp_size;

  // Registers are allocated per warp in units of `register_alloc_granularity`.
  const int regs_per_warp =
      round_up(std::max(regs_per_thread, 1) * device.warp_size,
               device.register_alloc_granularity);
  const int warps_by_regs = device.registers_per_sm / regs_per_warp;
  const int blocks_by_regs = warps_by_regs / warps_per_block;

  const int smem_alloc = smem_bytes_per_block == 0
                             ? 0
                             : round_up(smem_bytes_per_block,
                                        device.shared_mem_alloc_granularity);
  const int blocks_by_smem = smem_alloc == 0
                                 ? std::numeric_limits<int>::max()
                                 : device.shared_mem_per_sm / smem_alloc;

  const int blocks_by_threads = device.max_threads_per_sm / threads_per_block;
  const int blocks_by_slots = device.max_blocks_per_sm;

  Occupancy occ;
  occ.blocks_per_sm = blocks_by_regs;
  occ.limiter = Occupancy::Limiter::kRegisters;
  if (blocks_by_smem < occ.blocks_per_sm) {
    occ.blocks_per_sm = blocks_by_smem;
    occ.limiter = Occupancy::Limiter::kSharedMemory;
  }
  if (blocks_by_threads < occ.blocks_per_sm) {
    occ.blocks_per_sm = blocks_by_threads;
    occ.limiter = Occupancy::Limiter::kThreads;
  }
  if (blocks_by_slots < occ.blocks_per_sm) {
    occ.blocks_per_sm = blocks_by_slots;
    occ.limiter = Occupancy::Limiter::kBlockSlots;
  }
  occ.blocks_per_sm = std::max(occ.blocks_per_sm, 0);
  // A kernel whose single block exhausts an SM resource still runs alone.
  if (occ.blocks_per_sm == 0) {
    occ.blocks_per_sm = 1;
  }
  occ.active_warps_per_sm =
      std::min(occ.blocks_per_sm * warps_per_block, device.max_warps_per_sm);
  occ.active_threads_per_sm = occ.active_warps_per_sm * device.warp_size;
  occ.fraction = static_cast<double>(occ.active_warps_per_sm) /
                 static_cast<double>(device.max_warps_per_sm);
  return occ;
}

Occupancy compute_occupancy(const DeviceSpec& device, const Kernel& kernel) {
  return compute_occupancy(device, kernel.threads_per_block, kernel.vreg_count,
                           kernel.smem_bytes);
}

}  // namespace wsim::simt
