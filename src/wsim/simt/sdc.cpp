#include "wsim/simt/sdc.hpp"

namespace wsim::simt {

namespace {

/// splitmix64 finalizer: full-avalanche mix, so consecutive event numbers
/// give independent-looking draws.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool SdcPlan::flips(std::uint64_t stream, std::uint64_t event, SdcSite site,
                    int* bit) const noexcept {
  if (flip_prob <= 0.0 || !site_enabled(site)) {
    return false;
  }
  std::uint64_t h = mix(kDomain ^ seed);
  h = mix(h ^ stream);
  h = mix(h ^ (event * 4 + static_cast<std::uint64_t>(site)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= flip_prob) {
    return false;
  }
  *bit = static_cast<int>(mix(h) & 31);
  return true;
}

std::uint64_t sdc_device_hash(std::string_view device_name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : device_name) {  // FNV-1a
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t sdc_stream(std::uint64_t device_hash, std::uint64_t launch_id,
                         std::uint64_t block_index) noexcept {
  return mix(mix(device_hash ^ mix(launch_id)) ^ block_index);
}

std::uint64_t sdc_sub_launch(std::uint64_t launch_id, std::uint64_t sub) noexcept {
  return mix(launch_id ^ mix(sub + 1));
}

}  // namespace wsim::simt
