#pragma once

#include <cstdint>
#include <string_view>

namespace wsim::simt {

/// Write-event class an SDC flip can land in. The interpreter injects at
/// the three communication surfaces the paper's dependence chains flow
/// through (Eqs. 1-4): values written to vector registers, values stored
/// to shared memory, and shuffle payloads. Loads are left clean so every
/// corruption has exactly one injection site.
enum class SdcSite : std::uint64_t {
  kRegWrite = 0,
  kSmemStore = 1,
  kShuffle = 2,
};

/// Deterministic, seeded silent-data-corruption injection: every decision
/// is a pure function of (seed, stream, per-block write-event number,
/// site), where `stream` identifies the (device, launch, block) the event
/// belongs to — the same determinism discipline as fleet::FaultPlan. A
/// replay with the same plan and the same launches sees exactly the same
/// flips, independent of engine thread count (block execution is
/// single-threaded, so event numbering is reproducible).
///
/// Unlike FaultPlan, which perturbs *time* (fail-stop launch failures and
/// slowdowns), SdcPlan perturbs *values*: a fired event XORs one bit of
/// the written word. The two plans hash under distinct domain tags, so
/// the same seed drives uncorrelated fault and corruption streams.
struct SdcPlan {
  /// Domain tag separating SdcPlan draws from FaultPlan draws (see
  /// fleet::FaultPlan::kDomain); pinned different by guard_test.
  static constexpr std::uint64_t kDomain = 0x3C69F1E6D5A3B28DULL;

  std::uint64_t seed = 0;
  /// Per-event flip probability; 0 disables injection.
  double flip_prob = 0.0;
  bool reg_writes = true;
  bool smem_stores = true;
  bool shuffle_payloads = true;

  bool enabled() const noexcept {
    return flip_prob > 0.0 && (reg_writes || smem_stores || shuffle_payloads);
  }

  bool site_enabled(SdcSite site) const noexcept {
    switch (site) {
      case SdcSite::kRegWrite: return reg_writes;
      case SdcSite::kSmemStore: return smem_stores;
      case SdcSite::kShuffle: return shuffle_payloads;
    }
    return false;
  }

  /// True when write event `event` of `site` in block context `stream`
  /// flips; `*bit` then holds the flipped bit position (0-31: all data
  /// paths are 32-bit words).
  bool flips(std::uint64_t stream, std::uint64_t event, SdcSite site,
             int* bit) const noexcept;
};

/// FNV-1a hash of a device name, the device component of an SDC stream.
std::uint64_t sdc_device_hash(std::string_view device_name) noexcept;

/// Stream id of one block: pure hash of (device, launch, block index).
std::uint64_t sdc_stream(std::uint64_t device_hash, std::uint64_t launch_id,
                         std::uint64_t block_index) noexcept;

/// Derives a distinct launch id for sub-launch `sub` of a logical launch
/// (e.g. the per-variant launches of one PairHMM batch), so their blocks
/// draw from disjoint streams.
std::uint64_t sdc_sub_launch(std::uint64_t launch_id, std::uint64_t sub) noexcept;

}  // namespace wsim::simt
