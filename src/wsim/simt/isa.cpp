#include "wsim/simt/isa.hpp"

#include <sstream>

#include "wsim/util/check.hpp"

namespace wsim::simt {

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMov: return "mov";
    case Op::kTid: return "tid";
    case Op::kLaneId: return "laneid";
    case Op::kWarpId: return "warpid";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFFma: return "ffma";
    case Op::kFMax: return "fmax";
    case Op::kFMin: return "fmin";
    case Op::kIAdd: return "iadd";
    case Op::kISub: return "isub";
    case Op::kIMul: return "imul";
    case Op::kIMax: return "imax";
    case Op::kIMin: return "imin";
    case Op::kIAnd: return "iand";
    case Op::kIOr: return "ior";
    case Op::kIXor: return "ixor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kSetp: return "setp";
    case Op::kSelp: return "selp";
    case Op::kShfl: return "shfl";
    case Op::kShflUp: return "shfl.up";
    case Op::kShflDown: return "shfl.down";
    case Op::kShflXor: return "shfl.xor";
    case Op::kLds: return "lds";
    case Op::kSts: return "sts";
    case Op::kLdg: return "ldg";
    case Op::kStg: return "stg";
    case Op::kBar: return "bar.sync";
    case Op::kSMov: return "smov";
    case Op::kSAdd: return "sadd";
    case Op::kSSub: return "ssub";
    case Op::kSMul: return "smul";
    case Op::kSMin: return "smin";
    case Op::kSMax: return "smax";
    case Op::kLoop: return "loop";
    case Op::kEndLoop: return "endloop";
    case Op::kOpCount: break;
  }
  return "invalid";
}

namespace {

bool is_scalar_op(Op op) noexcept {
  switch (op) {
    case Op::kSMov:
    case Op::kSAdd:
    case Op::kSSub:
    case Op::kSMul:
    case Op::kSMin:
    case Op::kSMax:
      return true;
    default:
      return false;
  }
}

void validate_operand(const Kernel& k, const Operand& operand, const char* what) {
  switch (operand.kind) {
    case Operand::Kind::kNone:
    case Operand::Kind::kImmediate:
      return;
    case Operand::Kind::kVector:
      util::require(operand.reg >= 0 && operand.reg < k.vreg_count,
                    std::string("vector operand out of range in ") + what);
      return;
    case Operand::Kind::kScalar:
      util::require(operand.reg >= 0 && operand.reg < k.sreg_count,
                    std::string("scalar operand out of range in ") + what);
      return;
  }
}

std::string operand_str(const Operand& operand) {
  // Built via += rather than `"x" + std::to_string(...)` to sidestep the
  // GCC 12 libstdc++ -Wrestrict false positive (GCC bug 105651).
  std::string out;
  switch (operand.kind) {
    case Operand::Kind::kNone:
      return "_";
    case Operand::Kind::kVector:
      out = "v";
      out += std::to_string(operand.reg);
      return out;
    case Operand::Kind::kScalar:
      out = "s";
      out += std::to_string(operand.reg);
      return out;
    case Operand::Kind::kImmediate:
      out = "#";
      out += std::to_string(static_cast<long long>(operand.imm));
      return out;
  }
  return "?";
}

}  // namespace

void validate(const Kernel& kernel) {
  util::require(kernel.threads_per_block > 0 && kernel.threads_per_block % 32 == 0,
                "kernel threads_per_block must be a positive multiple of 32");
  int loop_depth = 0;
  for (const Instr& ins : kernel.code) {
    validate_operand(kernel, ins.a, kernel.name.c_str());
    validate_operand(kernel, ins.b, kernel.name.c_str());
    validate_operand(kernel, ins.c, kernel.name.c_str());
    if (ins.pred >= 0) {
      util::require(ins.pred < kernel.vreg_count, "predicate register out of range");
    }
    if (ins.dst >= 0) {
      if (is_scalar_op(ins.op)) {
        util::require(ins.dst < kernel.sreg_count, "scalar dst out of range");
      } else {
        util::require(ins.dst < kernel.vreg_count, "vector dst out of range");
      }
    }
    if (ins.op == Op::kLoop) {
      util::require(ins.a.kind == Operand::Kind::kScalar ||
                        ins.a.kind == Operand::Kind::kImmediate,
                    "loop trip count must be scalar or immediate");
      ++loop_depth;
    } else if (ins.op == Op::kEndLoop) {
      util::require(loop_depth > 0, "endloop without matching loop");
      --loop_depth;
    }
  }
  util::require(loop_depth == 0, "unterminated loop region");
}

std::string disassemble(const Kernel& kernel) {
  std::ostringstream oss;
  oss << ".kernel " << kernel.name << " threads=" << kernel.threads_per_block
      << " vregs=" << kernel.vreg_count << " sregs=" << kernel.sreg_count
      << " smem=" << kernel.smem_bytes << "\n";
  int indent = 0;
  for (const Instr& ins : kernel.code) {
    if (ins.op == Op::kEndLoop) {
      --indent;
    }
    for (int i = 0; i < indent + 1; ++i) {
      oss << "  ";
    }
    if (ins.pred >= 0) {
      oss << (ins.pred_negate ? "@!p" : "@p") << ins.pred << ' ';
    }
    oss << to_string(ins.op);
    if (ins.dst >= 0) {
      oss << ' ' << (is_scalar_op(ins.op) ? 's' : 'v') << ins.dst << ',';
    }
    oss << ' ' << operand_str(ins.a) << ", " << operand_str(ins.b) << ", "
        << operand_str(ins.c) << '\n';
    if (ins.op == Op::kLoop) {
      ++indent;
    }
  }
  return oss.str();
}

}  // namespace wsim::simt
