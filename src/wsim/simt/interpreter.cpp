#include "wsim/simt/interpreter.hpp"

#include "wsim/simt/decode.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/simt/trace.hpp"
#include "wsim/simt/watchdog.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::simt {

void GmemWriteSet::add(std::int64_t addr, std::size_t bytes) {
  if (bytes == 0) {
    return;
  }
  std::int64_t begin = addr;
  std::int64_t end = addr + static_cast<std::int64_t>(bytes);
  // Absorb every span that touches [begin, end), including ones that
  // merely abut it, then insert the union.
  auto it = spans_.upper_bound(begin);
  if (it != spans_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      it = prev;
    }
  }
  while (it != spans_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = spans_.erase(it);
  }
  spans_.emplace(begin, end);
}

bool GmemWriteSet::overlaps(const GmemWriteSet& other) const noexcept {
  auto a = spans_.begin();
  auto b = other.spans_.begin();
  while (a != spans_.end() && b != other.spans_.end()) {
    if (a->second <= b->first) {
      ++a;
    } else if (b->second <= a->first) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

namespace {

constexpr int kWarpSize = 32;
/// Cycles lost to the taken backward branch closing each loop iteration.
constexpr long long kBranchCycles = 2;

using Lanes = std::array<std::uint64_t, kWarpSize>;

float as_f32(std::uint64_t bits) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

std::uint64_t from_f32(float value) noexcept {
  return std::bit_cast<std::uint32_t>(value);
}

std::int64_t as_i64(std::uint64_t bits) noexcept {
  return static_cast<std::int64_t>(bits);
}

std::uint64_t from_i64(std::int64_t value) noexcept {
  return static_cast<std::uint64_t>(value);
}

/// B1 zero-extends; B4 sign-extends (see MemWidth documentation).
std::uint64_t load_bits(const std::uint8_t* src, MemWidth width) noexcept {
  if (width == MemWidth::kB1) {
    return *src;
  }
  std::int32_t word = 0;
  std::memcpy(&word, src, 4);
  return from_i64(word);
}

/// Per-warp execution state.
struct WarpState {
  int warp_index = 0;
  std::size_t pc = 0;
  long long cursor = 0;         ///< next issue cycle
  long long cur_cycle = -1;     ///< cycle of the current issue group
  int issued_this_cycle = 0;    ///< instructions issued in cur_cycle (dual issue)
  long long last_complete = 0;  ///< completion time of the latest instruction
  std::vector<Lanes> vregs;
  std::vector<long long> vready;
  std::vector<std::uint64_t> sregs;
  std::vector<long long> sready;
  struct LoopFrame {
    std::size_t begin_pc;
    std::int64_t remaining;
  };
  std::vector<LoopFrame> loops;
  bool at_barrier = false;
  std::size_t barrier_pc = 0;  ///< pc of the kBar this warp waits at
  bool done = false;
};

struct SharedMemory {
  std::vector<std::uint8_t> data;
};

class BlockEngine {
 public:
  BlockEngine(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
              std::span<const std::uint64_t> scalar_args, const BlockRunOptions& options)
      : kernel_(kernel),
        dev_(device),
        gmem_(gmem),
        trace_(options.trace),
        writes_(options.writes),
        sdc_(options.sdc != nullptr && options.sdc->enabled() ? options.sdc : nullptr),
        sdc_stream_(options.sdc_stream),
        max_cycles_(options.max_cycles) {
    validate(kernel);
    build_loop_matches();
    smem_.data.assign(static_cast<std::size_t>(std::max(kernel.smem_bytes, 1)), 0);
    const int warps = kernel.warps_per_block();
    warps_.resize(static_cast<std::size_t>(warps));
    for (int w = 0; w < warps; ++w) {
      WarpState& warp = warps_[static_cast<std::size_t>(w)];
      warp.warp_index = w;
      warp.vregs.assign(static_cast<std::size_t>(std::max(kernel.vreg_count, 1)), Lanes{});
      warp.vready.assign(warp.vregs.size(), 0);
      warp.sregs.assign(static_cast<std::size_t>(std::max(kernel.sreg_count, 1)), 0);
      warp.sready.assign(warp.sregs.size(), 0);
      for (std::size_t i = 0; i < scalar_args.size() && i < warp.sregs.size(); ++i) {
        warp.sregs[i] = scalar_args[i];
      }
    }
  }

  BlockResult run() {
    while (true) {
      bool any_running = false;
      for (WarpState& warp : warps_) {
        if (!warp.done && !warp.at_barrier) {
          run_until_barrier(warp);
          any_running = true;
        }
      }
      if (!any_running) {
        break;
      }
      const bool all_done =
          std::all_of(warps_.begin(), warps_.end(), [](const WarpState& w) { return w.done; });
      if (all_done) {
        break;
      }
      const bool any_barrier = std::any_of(warps_.begin(), warps_.end(),
                                           [](const WarpState& w) { return w.at_barrier; });
      if (any_barrier) {
        // Deadlock detection: warps can never join when some ran to
        // completion while others wait at a __syncthreads, or when waiting
        // warps sit at *different* __syncthreads (divergent barriers via
        // predication — undefined behaviour that hangs real hardware).
        // The interpreter's run-until-barrier discipline means every warp
        // is done or waiting here, so these two checks are exhaustive.
        bool any_done = false;
        bool divergent = false;
        bool have_pc = false;
        std::size_t join_pc = 0;
        long long waited = 0;
        for (const WarpState& warp : warps_) {
          if (warp.done) {
            any_done = true;
          } else if (warp.at_barrier) {
            waited = std::max(waited, warp.cursor);
            if (!have_pc) {
              join_pc = warp.barrier_pc;
              have_pc = true;
            } else if (warp.barrier_pc != join_pc) {
              divergent = true;
            }
          }
        }
        if (any_done || divergent) {
          throw LaunchTimeout(
              LaunchTimeout::Kind::kBarrierDeadlock,
              "barrier deadlock in kernel " + kernel_.name + ": " +
                  (any_done
                       ? "some warps finished while others wait at __syncthreads"
                       : "warps wait at different __syncthreads"),
              waited, max_cycles_);
        }
        long long arrival = 0;
        for (const WarpState& warp : warps_) {
          arrival = std::max(arrival, warp.cursor);
        }
        const long long released = arrival + dev_.lat.sync_barrier;
        for (WarpState& warp : warps_) {
          if (!warp.done) {
            if (trace_ != nullptr) {
              trace_->add({"bar.sync", warp.warp_index, warp.cursor, released});
            }
            warp.cursor = released;
            warp.last_complete = std::max(warp.last_complete, released);
            warp.at_barrier = false;
          }
        }
        result_.barriers += 1;
      }
    }
    for (const WarpState& warp : warps_) {
      result_.cycles = std::max(result_.cycles, std::max(warp.cursor, warp.last_complete));
    }
    check_budget(result_.cycles);
    return result_;
  }

 private:
  void build_loop_matches() {
    loop_match_.assign(kernel_.code.size(), 0);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < kernel_.code.size(); ++i) {
      if (kernel_.code[i].op == Op::kLoop) {
        stack.push_back(i);
      } else if (kernel_.code[i].op == Op::kEndLoop) {
        util::ensure(!stack.empty(), "interpreter: unbalanced loops");
        loop_match_[stack.back()] = i;
        loop_match_[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  // --- operand evaluation -------------------------------------------------
  std::uint64_t lane_value(const WarpState& warp, const Operand& operand, int lane) const {
    switch (operand.kind) {
      case Operand::Kind::kVector:
        return warp.vregs[static_cast<std::size_t>(operand.reg)][static_cast<std::size_t>(lane)];
      case Operand::Kind::kScalar:
        return warp.sregs[static_cast<std::size_t>(operand.reg)];
      case Operand::Kind::kImmediate:
        return operand.imm;
      case Operand::Kind::kNone:
        return 0;
    }
    return 0;
  }

  std::uint64_t scalar_value(const WarpState& warp, const Operand& operand) const {
    util::ensure(operand.kind != Operand::Kind::kVector,
                 "interpreter: vector operand in scalar context");
    return lane_value(warp, operand, 0);
  }

  long long operand_ready(const WarpState& warp, const Operand& operand) const {
    switch (operand.kind) {
      case Operand::Kind::kVector:
        return warp.vready[static_cast<std::size_t>(operand.reg)];
      case Operand::Kind::kScalar:
        return warp.sready[static_cast<std::size_t>(operand.reg)];
      default:
        return 0;
    }
  }

  /// Lanes of this warp whose predicate enables the instruction.
  std::array<bool, kWarpSize> active_lanes(const WarpState& warp, const Instr& ins) const {
    std::array<bool, kWarpSize> active{};
    const int base_tid = warp.warp_index * kWarpSize;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      bool on = base_tid + lane < kernel_.threads_per_block;
      if (on && ins.pred >= 0) {
        const bool p =
            warp.vregs[static_cast<std::size_t>(ins.pred)][static_cast<std::size_t>(lane)] != 0;
        on = ins.pred_negate ? !p : p;
      }
      active[static_cast<std::size_t>(lane)] = on;
    }
    return active;
  }

  // --- timing ---------------------------------------------------------------
  int base_latency(const Instr& ins) const {
    const LatencyTable& lat = dev_.lat;
    switch (ins.op) {
      case Op::kMov:
        return lat.reg_access;
      case Op::kTid:
      case Op::kLaneId:
      case Op::kWarpId:
      case Op::kIAdd:
      case Op::kISub:
      case Op::kIMax:
      case Op::kIMin:
      case Op::kIAnd:
      case Op::kIOr:
      case Op::kIXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kSetp:
      case Op::kSelp:
      case Op::kSMov:
      case Op::kSAdd:
      case Op::kSSub:
      case Op::kSMin:
      case Op::kSMax:
        return lat.ialu;
      case Op::kIMul:
      case Op::kSMul:
        return lat.imul;
      case Op::kFAdd:
      case Op::kFSub:
      case Op::kFMul:
      case Op::kFFma:
      case Op::kFMax:
      case Op::kFMin:
        return lat.falu;
      case Op::kShfl:
        return lat.shfl;
      case Op::kShflUp:
        return lat.shfl_up;
      case Op::kShflDown:
        return lat.shfl_down;
      case Op::kShflXor:
        return lat.shfl_xor;
      case Op::kLds:
        return lat.smem_load;
      case Op::kSts:
        return lat.smem_store;
      case Op::kLdg:
        return 0;  // resolved per access in exec_gmem (warm vs cold segment)
      case Op::kStg:
        return lat.gmem_store;
      default:
        return 1;
    }
  }

  // --- execution --------------------------------------------------------------
  void run_until_barrier(WarpState& warp) {
    while (warp.pc < kernel_.code.size()) {
      const Instr& ins = kernel_.code[warp.pc];
      if (ins.op == Op::kBar) {
        // A predicated barrier a warp's lanes are all disabled for is
        // skipped — that warp never arrives, which is how divergent
        // __syncthreads (and the deadlocks run() detects) arise.
        if (ins.pred >= 0) {
          const auto active = active_lanes(warp, ins);
          if (std::none_of(active.begin(), active.end(), [](bool on) { return on; })) {
            ++warp.pc;
            continue;
          }
        }
        warp.at_barrier = true;
        warp.barrier_pc = warp.pc;
        ++warp.pc;
        count_issue(ins);
        return;
      }
      step(warp, ins);
      ++warp.pc;
    }
    warp.done = true;
  }

  void count_issue(const Instr& ins) {
    result_.instructions += 1;
    result_.op_counts[static_cast<std::size_t>(ins.op)] += 1;
  }

  void step(WarpState& warp, const Instr& ins) {
    count_issue(ins);

    // Control flow carries no register dependences.
    if (ins.op == Op::kLoop) {
      const auto trips = as_i64(scalar_value(warp, ins.a));
      if (trips <= 0) {
        // Jump to the matching kEndLoop; the caller's ++pc steps past it.
        // No frame is pushed because the region never executes.
        warp.pc = loop_match_[warp.pc];
      } else {
        warp.loops.push_back({warp.pc, trips});
      }
      warp.cursor += dev_.lat.issue_interval;
      return;
    }
    if (ins.op == Op::kEndLoop) {
      util::ensure(!warp.loops.empty(), "interpreter: endloop without loop");
      WarpState::LoopFrame& frame = warp.loops.back();
      if (--frame.remaining > 0) {
        warp.pc = frame.begin_pc;  // caller increments to first body instruction
      } else {
        warp.loops.pop_back();
      }
      warp.cursor += kBranchCycles;
      return;
    }

    long long start = warp.cursor;
    start = std::max(start, operand_ready(warp, ins.a));
    start = std::max(start, operand_ready(warp, ins.b));
    start = std::max(start, operand_ready(warp, ins.c));
    if (ins.pred >= 0) {
      start = std::max(start, warp.vready[static_cast<std::size_t>(ins.pred)]);
    }

    long long latency = base_latency(ins);
    const auto active = active_lanes(warp, ins);

    switch (ins.op) {
      case Op::kLds:
      case Op::kSts:
        latency += exec_smem(warp, ins, active);
        break;
      case Op::kLdg:
      case Op::kStg:
        latency += exec_gmem(warp, ins, active);
        break;
      default:
        exec_alu(warp, ins, active);
        break;
    }

    const long long complete = start + latency;
    if (ins.dst >= 0) {
      if (ins.op == Op::kSMov || ins.op == Op::kSAdd || ins.op == Op::kSSub ||
          ins.op == Op::kSMul || ins.op == Op::kSMin || ins.op == Op::kSMax) {
        warp.sready[static_cast<std::size_t>(ins.dst)] = complete;
      } else {
        warp.vready[static_cast<std::size_t>(ins.dst)] = complete;
      }
    }
    warp.last_complete = std::max(warp.last_complete, complete);
    if (trace_ != nullptr) {
      trace_->add({std::string(to_string(ins.op)), warp.warp_index, start, complete});
    }

    // Dual issue: up to issues_per_cycle independent instructions share an
    // issue cycle; the group advances once the slots are used.
    if (start > warp.cur_cycle) {
      warp.cur_cycle = start;
      warp.issued_this_cycle = 1;
    } else {
      ++warp.issued_this_cycle;
    }
    warp.cursor = warp.issued_this_cycle >= dev_.lat.issues_per_cycle
                      ? warp.cur_cycle + dev_.lat.issue_interval
                      : warp.cur_cycle;
    // Watchdog: a warp whose clock ran past the budget can only push the
    // block makespan further, so abort mid-run instead of simulating a
    // runaway loop to completion. Strict '>' both here and in the final
    // check keeps budget-exactly-reached kernels legal.
    check_budget(std::max(warp.cursor, warp.last_complete));
  }

  void check_budget(long long cycles) const {
    if (max_cycles_ > 0 && cycles > max_cycles_) {
      throw LaunchTimeout(LaunchTimeout::Kind::kCycleBudget,
                          "cycle budget exceeded in kernel " + kernel_.name + ": " +
                              std::to_string(cycles) + " > " +
                              std::to_string(max_cycles_) + " cycles",
                          cycles, max_cycles_);
    }
  }

  /// Routes every eligible write event through the SDC plan; a fired event
  /// XORs one bit of the written word. The event counter advances whether
  /// or not the draw fires, so flip positions are a pure function of the
  /// plan and the block's execution, never of other blocks or threads.
  std::uint64_t maybe_corrupt(std::uint64_t value, SdcSite site) {
    if (sdc_ == nullptr) {
      return value;
    }
    int bit = 0;
    if (sdc_->flips(sdc_stream_, sdc_events_++, site, &bit)) {
      result_.sdc_flips += 1;
      value ^= std::uint64_t{1} << bit;
    }
    return value;
  }

  void write_lane(WarpState& warp, int dst, int lane, std::uint64_t value) {
    warp.vregs[static_cast<std::size_t>(dst)][static_cast<std::size_t>(lane)] = value;
  }

  void exec_alu(WarpState& warp, const Instr& ins, const std::array<bool, kWarpSize>& active) {
    // Scalar ops execute once per warp.
    switch (ins.op) {
      case Op::kSMov:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = scalar_value(warp, ins.a);
        return;
      case Op::kSAdd:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = from_i64(
            as_i64(scalar_value(warp, ins.a)) + as_i64(scalar_value(warp, ins.b)));
        return;
      case Op::kSSub:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = from_i64(
            as_i64(scalar_value(warp, ins.a)) - as_i64(scalar_value(warp, ins.b)));
        return;
      case Op::kSMul:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = from_i64(
            as_i64(scalar_value(warp, ins.a)) * as_i64(scalar_value(warp, ins.b)));
        return;
      case Op::kSMin:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = from_i64(std::min(
            as_i64(scalar_value(warp, ins.a)), as_i64(scalar_value(warp, ins.b))));
        return;
      case Op::kSMax:
        warp.sregs[static_cast<std::size_t>(ins.dst)] = from_i64(std::max(
            as_i64(scalar_value(warp, ins.a)), as_i64(scalar_value(warp, ins.b))));
        return;
      default:
        break;
    }

    // Shuffles read source-lane values before any lane writes its result.
    if (ins.op == Op::kShfl || ins.op == Op::kShflUp || ins.op == Op::kShflDown ||
        ins.op == Op::kShflXor) {
      exec_shuffle(warp, ins, active);
      return;
    }

    const int base_tid = warp.warp_index * kWarpSize;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!active[static_cast<std::size_t>(lane)]) {
        continue;
      }
      const std::uint64_t a = lane_value(warp, ins.a, lane);
      const std::uint64_t b = lane_value(warp, ins.b, lane);
      const std::uint64_t c = lane_value(warp, ins.c, lane);
      std::uint64_t out = 0;
      switch (ins.op) {
        case Op::kNop:
          continue;
        case Op::kMov:
          out = a;
          break;
        case Op::kTid:
          out = from_i64(base_tid + lane);
          break;
        case Op::kLaneId:
          out = from_i64(lane);
          break;
        case Op::kWarpId:
          out = from_i64(warp.warp_index);
          break;
        case Op::kFAdd:
          out = from_f32(as_f32(a) + as_f32(b));
          break;
        case Op::kFSub:
          out = from_f32(as_f32(a) - as_f32(b));
          break;
        case Op::kFMul:
          out = from_f32(as_f32(a) * as_f32(b));
          break;
        case Op::kFFma:
          out = from_f32(as_f32(a) * as_f32(b) + as_f32(c));
          break;
        case Op::kFMax:
          out = from_f32(std::max(as_f32(a), as_f32(b)));
          break;
        case Op::kFMin:
          out = from_f32(std::min(as_f32(a), as_f32(b)));
          break;
        case Op::kIAdd:
          out = from_i64(as_i64(a) + as_i64(b));
          break;
        case Op::kISub:
          out = from_i64(as_i64(a) - as_i64(b));
          break;
        case Op::kIMul:
          out = from_i64(as_i64(a) * as_i64(b));
          break;
        case Op::kIMax:
          out = from_i64(std::max(as_i64(a), as_i64(b)));
          break;
        case Op::kIMin:
          out = from_i64(std::min(as_i64(a), as_i64(b)));
          break;
        case Op::kIAnd:
          out = a & b;
          break;
        case Op::kIOr:
          out = a | b;
          break;
        case Op::kIXor:
          out = a ^ b;
          break;
        case Op::kShl:
          out = from_i64(as_i64(a) << (as_i64(b) & 63));
          break;
        case Op::kShr:
          out = from_i64(as_i64(a) >> (as_i64(b) & 63));
          break;
        case Op::kSetp: {
          bool result = false;
          if (ins.dtype == DType::kF32) {
            const float x = as_f32(a);
            const float y = as_f32(b);
            switch (ins.cmp) {
              case Cmp::kLt: result = x < y; break;
              case Cmp::kLe: result = x <= y; break;
              case Cmp::kGt: result = x > y; break;
              case Cmp::kGe: result = x >= y; break;
              case Cmp::kEq: result = x == y; break;
              case Cmp::kNe: result = x != y; break;
            }
          } else {
            const std::int64_t x = as_i64(a);
            const std::int64_t y = as_i64(b);
            switch (ins.cmp) {
              case Cmp::kLt: result = x < y; break;
              case Cmp::kLe: result = x <= y; break;
              case Cmp::kGt: result = x > y; break;
              case Cmp::kGe: result = x >= y; break;
              case Cmp::kEq: result = x == y; break;
              case Cmp::kNe: result = x != y; break;
            }
          }
          out = result ? 1 : 0;
          break;
        }
        case Op::kSelp:
          out = (c != 0) ? a : b;
          break;
        default:
          throw util::CheckError("interpreter: unhandled opcode in ALU path");
      }
      write_lane(warp, ins.dst, lane, maybe_corrupt(out, SdcSite::kRegWrite));
    }
  }

  void exec_shuffle(WarpState& warp, const Instr& ins,
                    const std::array<bool, kWarpSize>& active) {
    const auto width = static_cast<int>(as_i64(lane_value(warp, ins.c, 0)));
    util::require(width > 0 && width <= kWarpSize && (width & (width - 1)) == 0,
                  "shuffle width must be a power of two in [1, 32]");
    Lanes source{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      source[static_cast<std::size_t>(lane)] = lane_value(warp, ins.a, lane);
    }
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!active[static_cast<std::size_t>(lane)]) {
        continue;
      }
      const int base = lane & ~(width - 1);
      const auto arg = static_cast<int>(as_i64(lane_value(warp, ins.b, lane)));
      int src = lane;
      switch (ins.op) {
        case Op::kShfl: {
          // CUDA: source lane id taken modulo width within the segment.
          int idx = arg % width;
          if (idx < 0) {
            idx += width;
          }
          src = base + idx;
          break;
        }
        case Op::kShflUp:
          // Lanes whose segment offset is below delta keep their own value.
          if ((lane - base) >= arg && arg >= 0) {
            src = lane - arg;
          }
          break;
        case Op::kShflDown:
          if ((lane - base) + arg < width && arg >= 0) {
            src = lane + arg;
          }
          break;
        case Op::kShflXor: {
          const int target = lane ^ arg;
          if (target >= base && target < base + width) {
            src = target;
          }
          break;
        }
        default:
          break;
      }
      write_lane(warp, ins.dst, lane,
                 maybe_corrupt(source[static_cast<std::size_t>(src)], SdcSite::kShuffle));
    }
  }

  /// Executes a shared-memory access and returns the extra cycles caused by
  /// bank-conflict replays.
  long long exec_smem(WarpState& warp, const Instr& ins,
                      const std::array<bool, kWarpSize>& active) {
    const std::int64_t offset = as_i64(lane_value(warp, ins.b, 0));
    const std::size_t bytes = ins.width == MemWidth::kB1 ? 1 : 4;
    // Bank-conflict analysis: transactions = max distinct 4-byte words
    // mapped to the same bank (same-word broadcasts are free).
    std::array<std::vector<std::int64_t>, 32> bank_words;
    bool any_active = false;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!active[static_cast<std::size_t>(lane)]) {
        continue;
      }
      any_active = true;
      const std::int64_t addr = as_i64(lane_value(warp, ins.a, lane)) + offset;
      util::require(addr >= 0 && static_cast<std::size_t>(addr) + bytes <= smem_.data.size(),
                    "shared memory access out of bounds in kernel " + kernel_.name);
      const std::int64_t word = addr / 4;
      auto& words = bank_words[static_cast<std::size_t>(word % dev_.smem_banks)];
      if (std::find(words.begin(), words.end(), word) == words.end()) {
        words.push_back(word);
      }
      if (ins.op == Op::kLds) {
        write_lane(warp, ins.dst, lane, load_bits(smem_.data.data() + addr, ins.width));
      } else {
        const std::uint64_t value =
            maybe_corrupt(lane_value(warp, ins.c, lane), SdcSite::kSmemStore);
        std::memcpy(smem_.data.data() + addr, &value, bytes);
      }
    }
    std::size_t transactions = any_active ? 1 : 0;
    for (const auto& words : bank_words) {
      transactions = std::max(transactions, words.size());
    }
    result_.smem_transactions += transactions;
    return transactions > 1
               ? static_cast<long long>(transactions - 1) * dev_.lat.bank_conflict
               : 0;
  }

  /// Executes a global-memory access and returns the dependent load
  /// latency: cold (DRAM) when any touched 128 B segment is new to this
  /// block, cached when the block already touched every segment — a
  /// one-bit L1/texture-cache approximation.
  long long exec_gmem(WarpState& warp, const Instr& ins,
                      const std::array<bool, kWarpSize>& active) {
    const std::int64_t offset = as_i64(lane_value(warp, ins.b, 0));
    const std::size_t bytes = ins.width == MemWidth::kB1 ? 1 : 4;
    std::vector<std::int64_t> segments;
    bool any_cold = false;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!active[static_cast<std::size_t>(lane)]) {
        continue;
      }
      const std::int64_t addr = as_i64(lane_value(warp, ins.a, lane)) + offset;
      const std::int64_t segment = addr / 128;
      if (std::find(segments.begin(), segments.end(), segment) == segments.end()) {
        segments.push_back(segment);
      }
      if (warm_segments_.insert(segment).second) {
        any_cold = true;
      }
      if (ins.op == Op::kLdg) {
        write_lane(warp, ins.dst, lane, load_bits(gmem_.at(addr, bytes), ins.width));
      } else {
        const std::uint64_t value = lane_value(warp, ins.c, lane);
        std::memcpy(gmem_.at(addr, bytes), &value, bytes);
        if (writes_ != nullptr) {
          writes_->add(addr, bytes);
        }
      }
    }
    result_.gmem_transactions += segments.size();
    if (ins.op != Op::kLdg) {
      return 0;  // store latency is charged via base_latency
    }
    return any_cold ? dev_.lat.gmem_load : dev_.lat.gmem_load_cached;
  }

  const Kernel& kernel_;
  const DeviceSpec& dev_;
  GlobalMemory& gmem_;
  SharedMemory smem_;
  std::vector<WarpState> warps_;
  std::vector<std::size_t> loop_match_;
  std::unordered_set<std::int64_t> warm_segments_;
  Trace* trace_ = nullptr;
  GmemWriteSet* writes_ = nullptr;
  const SdcPlan* sdc_ = nullptr;
  std::uint64_t sdc_stream_ = 0;
  std::uint64_t sdc_events_ = 0;
  long long max_cycles_ = 0;
  BlockResult result_;
};

}  // namespace

BlockResult run_block(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                      std::span<const std::uint64_t> scalar_args, Trace* trace,
                      GmemWriteSet* writes) {
  BlockRunOptions options;
  options.trace = trace;
  options.writes = writes;
  return run_block(kernel, device, gmem, scalar_args, options);
}

BlockResult run_block(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                      std::span<const std::uint64_t> scalar_args,
                      const BlockRunOptions& options) {
  const InterpPath path = resolve_interp_path(options.interp);
  if (path == InterpPath::kFast || path == InterpPath::kVector) {
    const auto dispatch = [&](const DecodedProgram& program) {
      return path == InterpPath::kVector
                 ? run_block_vector(program, device, gmem, scalar_args, options)
                 : run_block_fast(program, device, gmem, scalar_args, options);
    };
    if (options.decoded != nullptr) {
      return dispatch(*options.decoded);
    }
    const std::shared_ptr<const DecodedProgram> program =
        shared_decoded_cache().get(kernel, device);
    return dispatch(*program);
  }
  BlockEngine engine(kernel, device, gmem, scalar_args, options);
  return engine.run();
}

}  // namespace wsim::simt
