#include "wsim/simt/device.hpp"

#include "wsim/util/check.hpp"

namespace wsim::simt {

std::string_view to_string(Arch arch) noexcept {
  switch (arch) {
    case Arch::kKepler:
      return "Kepler";
    case Arch::kMaxwell:
      return "Maxwell";
  }
  return "unknown";
}

double DeviceSpec::peak_gflops() const noexcept {
  return 2.0 * static_cast<double>(sm_count) * static_cast<double>(cores_per_sm) * clock_ghz;
}

double DeviceSpec::shared_mem_bw_gbps() const noexcept {
  return static_cast<double>(sm_count) * static_cast<double>(smem_banks) * 4.0 * clock_ghz;
}

int DeviceSpec::shuffle_latency(int variant) const {
  switch (variant) {
    case 0:
      return lat.shfl;
    case 1:
      return lat.shfl_up;
    case 2:
      return lat.shfl_down;
    case 3:
      return lat.shfl_xor;
    default:
      throw util::CheckError("shuffle_latency: variant must be in [0, 3]");
  }
}

namespace {

LatencyTable maxwell_latencies() {
  LatencyTable lat;
  lat.reg_access = 1;
  lat.ialu = 6;
  lat.imul = 13;
  lat.falu = 6;
  // Back-derived from the paper's critical-path estimates on K1200:
  // SW1 iteration = 6 smem accesses + 1 sync = 6*21 + 57 = 183 cycles;
  // SW2 iteration = 2 shuffles + 4 register ops = 2*9 + 4 = 22 cycles.
  lat.shfl = 9;
  lat.shfl_up = 9;
  lat.shfl_down = 9;
  lat.shfl_xor = 12;  // highest-latency variant on Maxwell (paper Fig. 3)
  lat.smem_load = 21;
  lat.smem_store = 21;
  lat.bank_conflict = 2;
  lat.sync_barrier = 57;
  lat.gmem_load = 350;
  lat.gmem_load_cached = 80;
  lat.gmem_store = 40;
  lat.issue_interval = 1;
  return lat;
}

LatencyTable kepler_latencies() {
  LatencyTable lat;
  lat.reg_access = 1;
  lat.ialu = 9;
  lat.imul = 9;
  lat.falu = 9;
  // Paper Fig. 3: Kepler shuffles are slower across the board and
  // shfl_xor is the *fastest* variant there (inverted vs. Maxwell).
  lat.shfl = 31;
  lat.shfl_up = 30;
  lat.shfl_down = 30;
  lat.shfl_xor = 26;
  lat.smem_load = 48;
  lat.smem_store = 48;
  lat.bank_conflict = 2;
  lat.sync_barrier = 96;
  lat.gmem_load = 230;
  lat.gmem_load_cached = 110;
  lat.gmem_store = 40;
  lat.issue_interval = 1;
  return lat;
}

}  // namespace

DeviceSpec make_k40() {
  DeviceSpec d;
  d.name = "K40";
  d.arch = Arch::kKepler;
  d.sm_count = 15;
  d.cores_per_sm = 192;
  d.clock_ghz = 0.745;
  d.max_threads_per_sm = 2048;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.max_registers_per_thread = 255;
  d.shared_mem_per_sm = 49152;
  d.shared_mem_per_block = 49152;
  d.schedulers_per_sm = 4;
  d.global_mem_bw_gbps = 288.0;
  d.lat = kepler_latencies();
  return d;
}

DeviceSpec make_k1200() {
  DeviceSpec d;
  d.name = "K1200";
  d.arch = Arch::kMaxwell;
  d.sm_count = 4;
  d.cores_per_sm = 128;
  d.clock_ghz = 1.033;  // 2 * 512 cores * 1.033 GHz = 1058 GFLOPs (Table I: 1057)
  d.max_threads_per_sm = 2048;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 32;
  d.registers_per_sm = 65536;
  d.max_registers_per_thread = 255;
  d.shared_mem_per_sm = 65536;
  d.shared_mem_per_block = 49152;
  d.schedulers_per_sm = 4;
  d.global_mem_bw_gbps = 80.0;  // Table I
  d.lat = maxwell_latencies();
  return d;
}

DeviceSpec make_titan_x() {
  DeviceSpec d;
  d.name = "Titan X";
  d.arch = Arch::kMaxwell;
  d.sm_count = 24;
  d.cores_per_sm = 128;
  d.clock_ghz = 1.076;  // 2 * 3072 cores * 1.076 GHz = 6611 GFLOPs (Table I)
  d.max_threads_per_sm = 2048;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 32;
  d.registers_per_sm = 65536;
  d.max_registers_per_thread = 255;
  d.shared_mem_per_sm = 98304;
  d.shared_mem_per_block = 49152;
  d.schedulers_per_sm = 4;
  d.global_mem_bw_gbps = 336.5;  // Table I
  d.lat = maxwell_latencies();
  return d;
}

std::vector<DeviceSpec> all_devices() {
  return {make_k40(), make_k1200(), make_titan_x()};
}

DeviceSpec device_by_name(std::string_view name) {
  std::string valid;
  for (auto& dev : all_devices()) {
    if (dev.name == name) {
      return dev;
    }
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += '\'' + dev.name + '\'';
  }
  throw util::CheckError("device_by_name: unknown device '" + std::string(name) +
                         "' (valid: " + valid + ")");
}

}  // namespace wsim::simt
