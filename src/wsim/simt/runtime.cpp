#include "wsim/simt/runtime.hpp"

#include "wsim/simt/engine.hpp"

namespace wsim::simt {

LaunchResult launch(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                    std::span<const BlockLaunch> blocks, const LaunchOptions& options) {
  return shared_engine().launch(kernel, device, gmem, blocks, options);
}

}  // namespace wsim::simt
