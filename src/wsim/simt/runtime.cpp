#include "wsim/simt/runtime.hpp"

#include "wsim/simt/trace.hpp"

#include <unordered_map>

#include "wsim/util/check.hpp"

namespace wsim::simt {

LaunchResult launch(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                    std::span<const BlockLaunch> blocks, const LaunchOptions& options) {
  util::require(!blocks.empty(), "launch: grid must contain at least one block");

  LaunchResult result;
  result.occupancy = compute_occupancy(device, kernel);

  std::vector<BlockCost> costs;
  costs.reserve(blocks.size());
  BlockCostCache local_cache;
  BlockCostCache& cache = options.cost_cache != nullptr ? *options.cost_cache : local_cache;
  bool first = true;
  for (const BlockLaunch& block : blocks) {
    const BlockCost* cached = nullptr;
    if (options.mode == ExecMode::kCachedByShape) {
      const auto it = cache.find(block.shape_key);
      if (it != cache.end()) {
        cached = &it->second;
      }
    }
    BlockCost cost;
    if (cached != nullptr) {
      cost = *cached;
      // Count the skipped block's work in the aggregates as well: it would
      // have issued the same instruction mix.
      result.instructions += cost.issue_slots;
      result.smem_transactions += cost.smem_transactions;
    } else {
      const BlockResult res = run_block(kernel, device, gmem, block.args,
                                        first ? options.trace_representative : nullptr);
      cost.latency_cycles = res.cycles;
      cost.issue_slots = res.instructions;
      cost.smem_transactions = res.smem_transactions;
      result.instructions += res.instructions;
      result.smem_transactions += res.smem_transactions;
      if (options.mode == ExecMode::kCachedByShape) {
        cache.emplace(block.shape_key, cost);
      }
      if (first) {
        result.representative = res;
        first = false;
      }
    }
    costs.push_back(cost);
  }

  result.timing = schedule_blocks(device, result.occupancy, costs);
  result.kernel_seconds = result.timing.seconds;

  const double pcie_bytes_per_second = device.pcie_bw_gbps * 1e9;
  double transfer = 0.0;
  if (options.transfer.h2d_bytes > 0) {
    transfer += static_cast<double>(options.transfer.h2d_bytes) / pcie_bytes_per_second +
                device.pcie_latency_us * 1e-6;
  }
  if (options.transfer.d2h_bytes > 0) {
    transfer += static_cast<double>(options.transfer.d2h_bytes) / pcie_bytes_per_second +
                device.pcie_latency_us * 1e-6;
  }
  result.transfer_seconds = transfer;
  result.overhead_seconds = device.kernel_launch_overhead_us * 1e-6;
  result.transfers_overlapped = options.overlap_transfers;
  return result;
}

}  // namespace wsim::simt
