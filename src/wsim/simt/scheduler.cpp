#include "wsim/simt/scheduler.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::simt {

KernelTiming schedule_blocks(const DeviceSpec& device, const Occupancy& occupancy,
                             std::span<const BlockCost> blocks) {
  util::require(occupancy.blocks_per_sm > 0, "schedule_blocks: occupancy must allow >= 1 block");
  KernelTiming timing;
  if (blocks.empty()) {
    return timing;
  }

  struct Slot {
    long long free_at = 0;
    int rank = 0;  ///< slot index within its SM: ties spread across SMs first
    int sm = 0;
    bool operator>(const Slot& other) const noexcept {
      if (free_at != other.free_at) {
        return free_at > other.free_at;
      }
      if (rank != other.rank) {
        return rank > other.rank;
      }
      return sm > other.sm;
    }
  };

  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> slots;
  for (int sm = 0; sm < device.sm_count; ++sm) {
    for (int s = 0; s < occupancy.blocks_per_sm; ++s) {
      slots.push({0, s, sm});
    }
  }

  std::vector<long long> sm_throughput_cycles(static_cast<std::size_t>(device.sm_count), 0);
  long long latency_makespan = 0;
  for (const BlockCost& block : blocks) {
    Slot slot = slots.top();
    slots.pop();
    const long long finish = slot.free_at + block.latency_cycles;
    latency_makespan = std::max(latency_makespan, finish);
    // Issue-slot serialization: schedulers_per_sm instructions retire per
    // cycle; the smem port serves one warp-wide transaction per cycle.
    const long long issue_cycles =
        static_cast<long long>((block.issue_slots + device.schedulers_per_sm - 1) /
                               static_cast<std::uint64_t>(device.schedulers_per_sm));
    const long long smem_cycles = static_cast<long long>(block.smem_transactions);
    sm_throughput_cycles[static_cast<std::size_t>(slot.sm)] +=
        std::max(issue_cycles, smem_cycles);
    slot.free_at = finish;
    slots.push(slot);
  }

  timing.latency_bound_cycles = latency_makespan;
  timing.throughput_bound_cycles =
      *std::max_element(sm_throughput_cycles.begin(), sm_throughput_cycles.end());
  timing.cycles = std::max(timing.latency_bound_cycles, timing.throughput_bound_cycles);
  timing.seconds = static_cast<double>(timing.cycles) / (device.clock_ghz * 1e9);
  return timing;
}

}  // namespace wsim::simt
