#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/simt/scheduler.hpp"
#include "wsim/simt/sdc.hpp"

namespace wsim::simt {

/// Host↔device copies associated with one launch (cudaMemcpy volumes).
struct TransferSpec {
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
};

/// How blocks are executed.
///
/// kFull executes every block functionally (results in GlobalMemory are
/// valid for all blocks). kCachedByShape executes one representative block
/// per distinct `shape_key` and reuses its measured cost for the others —
/// valid because kernel control flow (and therefore timing) depends only
/// on the scalar arguments that define the shape, not on sequence content.
/// Use it for large timing sweeps; only representative blocks' outputs are
/// written.
enum class ExecMode { kFull, kCachedByShape };

/// One block of a launch: its scalar arguments (filling s0, s1, ... in
/// KernelBuilder::param() order) and a shape key for timing deduplication.
struct BlockLaunch {
  std::vector<std::uint64_t> args;
  std::uint64_t shape_key = 0;
};

/// Reusable block-cost memoization across launches of the same kernel on
/// the same device (e.g. the Fig. 10 batch-size sweep relaunches identical
/// task shapes many times).
using BlockCostCache = std::unordered_map<std::uint64_t, BlockCost>;

struct LaunchOptions {
  ExecMode mode = ExecMode::kFull;
  TransferSpec transfer;
  /// Optional external cache for kCachedByShape; when null a per-launch
  /// cache is used. Must only be shared between launches of the same
  /// kernel on the same device.
  BlockCostCache* cost_cache = nullptr;
  /// kCachedByShape only: memoize block costs in the executing engine's
  /// persistent sharded cache instead of `cost_cache`. The engine keys
  /// entries by kernel identity and device as well as shape, so one cache
  /// safely serves every kernel/device pair across launches. Mutually
  /// exclusive with `cost_cache`.
  bool use_engine_cache = false;
  /// CUDA-streams-style pipelining: the h2d copy overlaps kernel
  /// execution (the d2h copy still drains after the kernel, as a real
  /// stream must). The paper's numbers serialize everything; this is the
  /// natural follow-up optimization.
  bool overlap_transfers = false;
  /// When non-null, records the representative (first executed) block's
  /// instruction timeline (see simt::Trace).
  class Trace* trace_representative = nullptr;
  /// Deterministic silent-data-corruption injection (see simt/sdc.hpp).
  /// Requires kFull: in kCachedByShape most blocks reuse a representative's
  /// cost, so injection would corrupt the shared cost cache instead of
  /// modelling independent per-block upsets.
  SdcPlan sdc;
  /// Identifies this launch in SDC stream derivation; callers give every
  /// (re-)execution a fresh id so retries draw independent flips.
  std::uint64_t sdc_launch_id = 0;
  /// Watchdog cycle budget per block; a block exceeding it throws
  /// simt::LaunchTimeout. 0 disables. Barrier deadlocks are detected and
  /// thrown unconditionally.
  long long max_block_cycles = 0;
  /// Interpreter selection: the predecoded fast path (default) or the
  /// legacy switch interpreter, for A/B comparison and differential
  /// testing (see simt::InterpPath; WSIM_INTERP=legacy flips the default).
  InterpPath interp = InterpPath::kDefault;
};

/// Everything the benchmarks need from one kernel launch.
struct LaunchResult {
  KernelTiming timing;
  Occupancy occupancy;
  double kernel_seconds = 0.0;    ///< device execution only
  double h2d_seconds = 0.0;       ///< PCIe host-to-device component
  double d2h_seconds = 0.0;       ///< PCIe device-to-host component
  double transfer_seconds = 0.0;  ///< h2d + d2h (kept for existing callers)
  double overhead_seconds = 0.0;  ///< kernel-launch overhead
  std::uint64_t instructions = 0;         ///< summed over all blocks
  std::uint64_t smem_transactions = 0;    ///< summed over all blocks
  std::uint64_t blocks_executed = 0;      ///< blocks run through the interpreter
  std::uint64_t sdc_flips = 0;            ///< injected bit flips summed over executed blocks
  BlockResult representative;             ///< first block's detailed record
  bool transfers_overlapped = false;      ///< LaunchOptions::overlap_transfers

  /// Wall-clock including transfers and launch overhead (paper Fig. 9/10
  /// convention). With streams only the h2d copy hides under the kernel;
  /// the d2h copy waits for kernel completion as on real hardware.
  double total_seconds() const noexcept {
    const double moved = transfers_overlapped
                             ? std::max(kernel_seconds, h2d_seconds) + d2h_seconds
                             : kernel_seconds + transfer_seconds;
    return moved + overhead_seconds;
  }
};

/// Executes a grid: runs blocks through the interpreter (per `options.mode`),
/// composes their costs with the SM scheduler, and adds host-side overheads
/// from the device's PCIe parameters.
///
/// Thin wrapper over the process-wide ExecutionEngine (see
/// simt/engine.hpp): blocks execute on its worker pool, bit-identical to
/// sequential execution. Construct a dedicated ExecutionEngine to control
/// the thread count per call site.
LaunchResult launch(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                    std::span<const BlockLaunch> blocks, const LaunchOptions& options = {});

}  // namespace wsim::simt
