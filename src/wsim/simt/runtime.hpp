#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/simt/scheduler.hpp"

namespace wsim::simt {

/// Host↔device copies associated with one launch (cudaMemcpy volumes).
struct TransferSpec {
  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
};

/// How blocks are executed.
///
/// kFull executes every block functionally (results in GlobalMemory are
/// valid for all blocks). kCachedByShape executes one representative block
/// per distinct `shape_key` and reuses its measured cost for the others —
/// valid because kernel control flow (and therefore timing) depends only
/// on the scalar arguments that define the shape, not on sequence content.
/// Use it for large timing sweeps; only representative blocks' outputs are
/// written.
enum class ExecMode { kFull, kCachedByShape };

/// One block of a launch: its scalar arguments (filling s0, s1, ... in
/// KernelBuilder::param() order) and a shape key for timing deduplication.
struct BlockLaunch {
  std::vector<std::uint64_t> args;
  std::uint64_t shape_key = 0;
};

/// Reusable block-cost memoization across launches of the same kernel on
/// the same device (e.g. the Fig. 10 batch-size sweep relaunches identical
/// task shapes many times).
using BlockCostCache = std::unordered_map<std::uint64_t, BlockCost>;

struct LaunchOptions {
  ExecMode mode = ExecMode::kFull;
  TransferSpec transfer;
  /// Optional external cache for kCachedByShape; when null a per-launch
  /// cache is used. Must only be shared between launches of the same
  /// kernel on the same device.
  BlockCostCache* cost_cache = nullptr;
  /// CUDA-streams-style pipelining: copies overlap kernel execution, so
  /// wall time is max(kernel, transfer) instead of their sum. The paper's
  /// numbers serialize them; this is the natural follow-up optimization.
  bool overlap_transfers = false;
  /// When non-null, records the representative (first executed) block's
  /// instruction timeline (see simt::Trace).
  class Trace* trace_representative = nullptr;
};

/// Everything the benchmarks need from one kernel launch.
struct LaunchResult {
  KernelTiming timing;
  Occupancy occupancy;
  double kernel_seconds = 0.0;    ///< device execution only
  double transfer_seconds = 0.0;  ///< PCIe h2d + d2h
  double overhead_seconds = 0.0;  ///< kernel-launch overhead
  std::uint64_t instructions = 0;         ///< summed over all blocks
  std::uint64_t smem_transactions = 0;    ///< summed over all blocks
  BlockResult representative;             ///< first block's detailed record
  bool transfers_overlapped = false;      ///< LaunchOptions::overlap_transfers

  /// Wall-clock including transfers and launch overhead (paper Fig. 9/10
  /// convention; with streams the slower of kernel/transfer dominates).
  double total_seconds() const noexcept {
    const double moved = transfers_overlapped
                             ? std::max(kernel_seconds, transfer_seconds)
                             : kernel_seconds + transfer_seconds;
    return moved + overhead_seconds;
  }
};

/// Executes a grid: runs blocks through the interpreter (per `options.mode`),
/// composes their costs with the SM scheduler, and adds host-side overheads
/// from the device's PCIe parameters.
LaunchResult launch(const Kernel& kernel, const DeviceSpec& device, GlobalMemory& gmem,
                    std::span<const BlockLaunch> blocks, const LaunchOptions& options = {});

}  // namespace wsim::simt
