#include "wsim/simt/builder.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::simt {

namespace {

bool is_scalar_op(Op op) noexcept {
  switch (op) {
    case Op::kSMov:
    case Op::kSAdd:
    case Op::kSSub:
    case Op::kSMul:
    case Op::kSMin:
    case Op::kSMax:
      return true;
    default:
      return false;
  }
}

/// Live interval of one virtual register over instruction indices.
struct Interval {
  int vreg = -1;
  int start = -1;
  int end = -1;
  bool first_event_is_pure_def = false;
};

struct LoopRegion {
  int begin = 0;  ///< index of kLoop
  int end = 0;    ///< index of kEndLoop
};

std::vector<LoopRegion> find_loops(const std::vector<Instr>& code) {
  std::vector<LoopRegion> regions;
  std::vector<int> stack;
  for (int i = 0; i < static_cast<int>(code.size()); ++i) {
    if (code[i].op == Op::kLoop) {
      stack.push_back(i);
    } else if (code[i].op == Op::kEndLoop) {
      util::ensure(!stack.empty(), "register allocator: unbalanced loops");
      regions.push_back({stack.back(), i});
      stack.pop_back();
    }
  }
  util::ensure(stack.empty(), "register allocator: unbalanced loops");
  return regions;
}

/// Computes live intervals for every virtual vector register. An interval
/// that touches a loop region is extended to cover the whole region when
/// the value is live across iterations: either it also exists outside the
/// region, or its first event inside the region is a use (loop-carried
/// dependence, e.g. the paper's reg3 = reg2 rotation).
std::vector<Interval> live_intervals(const std::vector<Instr>& code, int vreg_count) {
  std::vector<Interval> intervals(static_cast<std::size_t>(vreg_count));
  for (int v = 0; v < vreg_count; ++v) {
    intervals[static_cast<std::size_t>(v)].vreg = v;
  }
  auto touch = [&](int v, int index, bool pure_def) {
    util::ensure(v >= 0 && v < vreg_count, "register allocator: vreg out of range");
    Interval& iv = intervals[static_cast<std::size_t>(v)];
    if (iv.start < 0) {
      iv.start = index;
      iv.end = index;
      iv.first_event_is_pure_def = pure_def;
    } else {
      iv.end = std::max(iv.end, index);
    }
  };
  for (int i = 0; i < static_cast<int>(code.size()); ++i) {
    const Instr& ins = code[i];
    for (const Operand* operand : {&ins.a, &ins.b, &ins.c}) {
      if (operand->kind == Operand::Kind::kVector) {
        touch(operand->reg, i, /*pure_def=*/false);
      }
    }
    if (ins.pred >= 0) {
      touch(ins.pred, i, /*pure_def=*/false);
    }
    if (ins.dst >= 0 && !is_scalar_op(ins.op)) {
      // A predicated write preserves the old value in inactive lanes, so it
      // behaves as a use as well as a def.
      touch(ins.dst, i, /*pure_def=*/ins.pred < 0);
    }
  }

  const auto loops = find_loops(code);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LoopRegion& loop : loops) {
      for (Interval& iv : intervals) {
        if (iv.start < 0) {
          continue;
        }
        const bool touches = iv.start <= loop.end && iv.end >= loop.begin;
        if (!touches) {
          continue;
        }
        const bool escapes = iv.start < loop.begin || iv.end > loop.end;
        const bool carried = !escapes && !iv.first_event_is_pure_def;
        if (escapes || carried) {
          const int new_start = std::min(iv.start, loop.begin);
          const int new_end = std::max(iv.end, loop.end);
          if (new_start != iv.start || new_end != iv.end) {
            iv.start = new_start;
            iv.end = new_end;
            changed = true;
          }
        }
      }
    }
  }
  return intervals;
}

/// Greedy linear-scan allocation; returns the virtual→physical map and the
/// number of physical registers used.
std::pair<std::vector<int>, int> linear_scan(std::vector<Interval> intervals) {
  std::vector<int> mapping(intervals.size(), -1);
  std::vector<Interval> live;
  std::erase_if(intervals, [](const Interval& iv) { return iv.start < 0; });
  std::sort(intervals.begin(), intervals.end(), [](const Interval& x, const Interval& y) {
    return x.start != y.start ? x.start < y.start : x.vreg < y.vreg;
  });
  std::vector<bool> in_use;
  std::vector<std::pair<int, int>> active;  // (end, phys)
  int phys_count = 0;
  for (const Interval& iv : intervals) {
    std::erase_if(active, [&](const std::pair<int, int>& entry) {
      if (entry.first < iv.start) {
        in_use[static_cast<std::size_t>(entry.second)] = false;
        return true;
      }
      return false;
    });
    int phys = -1;
    for (int r = 0; r < static_cast<int>(in_use.size()); ++r) {
      if (!in_use[static_cast<std::size_t>(r)]) {
        phys = r;
        break;
      }
    }
    if (phys < 0) {
      phys = static_cast<int>(in_use.size());
      in_use.push_back(false);
    }
    in_use[static_cast<std::size_t>(phys)] = true;
    active.emplace_back(iv.end, phys);
    mapping[static_cast<std::size_t>(iv.vreg)] = phys;
    phys_count = std::max(phys_count, phys + 1);
  }
  return {std::move(mapping), phys_count};
}

void rewrite_registers(std::vector<Instr>& code, const std::vector<int>& mapping) {
  auto remap = [&](Operand& operand) {
    if (operand.kind == Operand::Kind::kVector) {
      operand.reg = mapping[static_cast<std::size_t>(operand.reg)];
      util::ensure(operand.reg >= 0, "register allocator: unmapped operand");
    }
  };
  for (Instr& ins : code) {
    remap(ins.a);
    remap(ins.b);
    remap(ins.c);
    if (ins.pred >= 0) {
      ins.pred = mapping[static_cast<std::size_t>(ins.pred)];
      util::ensure(ins.pred >= 0, "register allocator: unmapped predicate");
    }
    if (ins.dst >= 0 && !is_scalar_op(ins.op)) {
      ins.dst = mapping[static_cast<std::size_t>(ins.dst)];
      util::ensure(ins.dst >= 0, "register allocator: unmapped destination");
    }
  }
}

}  // namespace

// --- instruction scheduling -------------------------------------------------
//
// The interpreter issues in order (as GPU warps do), so a naive emission
// order serializes independent dependence chains. Real compilers
// list-schedule straight-line code to overlap them; this pass does the
// same within each region between control-flow / barrier instructions,
// honouring RAW/WAR/WAW register dependences, predicate reads, and a
// conservative memory order (loads commute, stores do not).

namespace {

bool is_region_boundary(Op op) noexcept {
  switch (op) {
    case Op::kLoop:
    case Op::kEndLoop:
    case Op::kBar:
      return true;
    default:
      return false;
  }
}

bool is_mem_op(Op op) noexcept {
  switch (op) {
    case Op::kLds:
    case Op::kSts:
    case Op::kLdg:
    case Op::kStg:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) noexcept { return op == Op::kSts || op == Op::kStg; }

/// Space id for memory ordering: 0 = shared, 1 = global.
int mem_space(Op op) noexcept {
  return (op == Op::kLds || op == Op::kSts) ? 0 : 1;
}

/// Static latency weights for scheduling priority (device-independent;
/// approximate Maxwell).
int sched_latency(Op op) noexcept {
  switch (op) {
    case Op::kIMul:
    case Op::kSMul:
      return 13;
    case Op::kShfl:
    case Op::kShflUp:
    case Op::kShflDown:
    case Op::kShflXor:
      return 10;
    case Op::kLds:
      return 21;
    case Op::kLdg:
      return 80;
    case Op::kMov:
      return 1;
    case Op::kSts:
    case Op::kStg:
      return 2;
    default:
      return 6;
  }
}

/// List-schedules one straight-line region [begin, end) in place.
void schedule_region(std::vector<Instr>& code, int begin, int end) {
  const int n = end - begin;
  if (n <= 2) {
    return;
  }
  // Dependence edges: succ lists + indegrees.
  std::vector<std::vector<int>> succs(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  auto add_edge = [&](int from, int to) {
    if (from == to) {
      return;
    }
    succs[static_cast<std::size_t>(from)].push_back(to);
    ++indegree[static_cast<std::size_t>(to)];
  };

  // Register access tracking: last def and uses-since-def, per (bank, reg).
  struct Access {
    int last_def = -1;
    std::vector<int> uses_since_def;
  };
  std::unordered_map<std::int64_t, Access> regs;
  auto key_of = [](bool scalar, int reg) {
    return (static_cast<std::int64_t>(scalar) << 32) | reg;
  };
  auto on_use = [&](bool scalar, int reg, int node) {
    Access& acc = regs[key_of(scalar, reg)];
    if (acc.last_def >= 0) {
      add_edge(acc.last_def, node);  // RAW
    }
    acc.uses_since_def.push_back(node);
  };
  auto on_def = [&](bool scalar, int reg, int node) {
    Access& acc = regs[key_of(scalar, reg)];
    if (acc.last_def >= 0) {
      add_edge(acc.last_def, node);  // WAW
    }
    for (const int use : acc.uses_since_def) {
      add_edge(use, node);  // WAR
    }
    acc.uses_since_def.clear();
    acc.last_def = node;
  };

  int last_store[2] = {-1, -1};
  std::vector<int> loads_since_store[2];

  for (int i = 0; i < n; ++i) {
    const Instr& ins = code[static_cast<std::size_t>(begin + i)];
    for (const Operand* operand : {&ins.a, &ins.b, &ins.c}) {
      if (operand->kind == Operand::Kind::kVector) {
        on_use(false, operand->reg, i);
      } else if (operand->kind == Operand::Kind::kScalar) {
        on_use(true, operand->reg, i);
      }
    }
    if (ins.pred >= 0) {
      on_use(false, ins.pred, i);
    }
    if (ins.dst >= 0) {
      const bool scalar = is_scalar_op(ins.op);
      if (ins.pred >= 0 && !scalar) {
        on_use(false, ins.dst, i);  // predicated write keeps old value
      }
      on_def(scalar, ins.dst, i);
    }
    if (is_mem_op(ins.op)) {
      const int space = mem_space(ins.op);
      if (is_store(ins.op)) {
        if (last_store[space] >= 0) {
          add_edge(last_store[space], i);
        }
        for (const int load : loads_since_store[space]) {
          add_edge(load, i);
        }
        loads_since_store[space].clear();
        last_store[space] = i;
      } else {
        if (last_store[space] >= 0) {
          add_edge(last_store[space], i);
        }
        loads_since_store[space].push_back(i);
      }
    }
  }

  // Priority: longest latency path to any sink.
  std::vector<int> height(static_cast<std::size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i) {
    int best = 0;
    for (const int succ : succs[static_cast<std::size_t>(i)]) {
      best = std::max(best, height[static_cast<std::size_t>(succ)]);
    }
    height[static_cast<std::size_t>(i)] =
        best + sched_latency(code[static_cast<std::size_t>(begin + i)].op);
  }

  // Greedy topological order by descending height (original index breaks
  // ties for determinism).
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) {
      ready.push_back(i);
    }
  }
  while (!ready.empty()) {
    int pick = 0;
    for (int r = 1; r < static_cast<int>(ready.size()); ++r) {
      const int cand = ready[static_cast<std::size_t>(r)];
      const int cur = ready[static_cast<std::size_t>(pick)];
      if (height[static_cast<std::size_t>(cand)] > height[static_cast<std::size_t>(cur)] ||
          (height[static_cast<std::size_t>(cand)] == height[static_cast<std::size_t>(cur)] &&
           cand < cur)) {
        pick = r;
      }
    }
    const int node = ready[static_cast<std::size_t>(pick)];
    ready.erase(ready.begin() + pick);
    order.push_back(node);
    for (const int succ : succs[static_cast<std::size_t>(node)]) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }
  util::ensure(order.size() == static_cast<std::size_t>(n),
               "scheduler: dependence graph has a cycle");

  std::vector<Instr> scheduled;
  scheduled.reserve(static_cast<std::size_t>(n));
  for (const int node : order) {
    scheduled.push_back(code[static_cast<std::size_t>(begin + node)]);
  }
  std::copy(scheduled.begin(), scheduled.end(),
            code.begin() + begin);
}

void schedule_instructions(std::vector<Instr>& code) {
  int region_start = 0;
  for (int i = 0; i <= static_cast<int>(code.size()); ++i) {
    if (i == static_cast<int>(code.size()) || is_region_boundary(code[static_cast<std::size_t>(i)].op)) {
      schedule_region(code, region_start, i);
      region_start = i + 1;
    }
  }
}

}  // namespace

KernelBuilder::KernelBuilder(std::string name, int threads_per_block) {
  util::require(threads_per_block > 0 && threads_per_block % 32 == 0,
                "KernelBuilder: threads_per_block must be a positive multiple of 32");
  kernel_.name = std::move(name);
  kernel_.threads_per_block = threads_per_block;
}

VReg KernelBuilder::vreg() { return VReg{next_vreg_++}; }

SReg KernelBuilder::sreg() { return SReg{next_sreg_++}; }

SReg KernelBuilder::param() { return SReg{next_sreg_++}; }

int KernelBuilder::alloc_smem(int bytes, int align) {
  util::require(bytes > 0, "alloc_smem: bytes must be positive");
  util::require(align > 0 && (align & (align - 1)) == 0, "alloc_smem: align must be a power of two");
  smem_cursor_ = (smem_cursor_ + align - 1) & ~(align - 1);
  const int offset = smem_cursor_;
  smem_cursor_ += bytes;
  return offset;
}

void KernelBuilder::push(Instr instr) {
  util::require(!built_, "KernelBuilder: already built");
  instr.pred = cur_pred_;
  instr.pred_negate = cur_pred_negate_;
  kernel_.code.push_back(instr);
}

VReg KernelBuilder::emit_val(Op op, Operand a, Operand b, Operand c) {
  const VReg dst = vreg();
  Instr ins;
  ins.op = op;
  ins.dst = dst.id;
  ins.a = a;
  ins.b = b;
  ins.c = c;
  push(ins);
  return dst;
}

SReg KernelBuilder::emit_scalar(Op op, Operand a, Operand b) {
  const SReg dst = sreg();
  Instr ins;
  ins.op = op;
  ins.dst = dst.id;
  ins.a = a;
  ins.b = b;
  push(ins);
  return dst;
}

VReg KernelBuilder::tid() { return emit_val(Op::kTid, Operand::none()); }
VReg KernelBuilder::laneid() { return emit_val(Op::kLaneId, Operand::none()); }
VReg KernelBuilder::warpid() { return emit_val(Op::kWarpId, Operand::none()); }

VReg KernelBuilder::mov(Operand src) { return emit_val(Op::kMov, src); }

void KernelBuilder::assign(VReg dst, Operand src) {
  emit_to(dst, Op::kMov, src);
}

VReg KernelBuilder::fadd(Operand a, Operand b) { return emit_val(Op::kFAdd, a, b); }
VReg KernelBuilder::fsub(Operand a, Operand b) { return emit_val(Op::kFSub, a, b); }
VReg KernelBuilder::fmul(Operand a, Operand b) { return emit_val(Op::kFMul, a, b); }
VReg KernelBuilder::ffma(Operand a, Operand b, Operand c) {
  return emit_val(Op::kFFma, a, b, c);
}
VReg KernelBuilder::fmax(Operand a, Operand b) { return emit_val(Op::kFMax, a, b); }
VReg KernelBuilder::fmin(Operand a, Operand b) { return emit_val(Op::kFMin, a, b); }

VReg KernelBuilder::iadd(Operand a, Operand b) { return emit_val(Op::kIAdd, a, b); }
VReg KernelBuilder::isub(Operand a, Operand b) { return emit_val(Op::kISub, a, b); }
VReg KernelBuilder::imul(Operand a, Operand b) { return emit_val(Op::kIMul, a, b); }
VReg KernelBuilder::imax(Operand a, Operand b) { return emit_val(Op::kIMax, a, b); }
VReg KernelBuilder::imin(Operand a, Operand b) { return emit_val(Op::kIMin, a, b); }
VReg KernelBuilder::iand(Operand a, Operand b) { return emit_val(Op::kIAnd, a, b); }
VReg KernelBuilder::ior(Operand a, Operand b) { return emit_val(Op::kIOr, a, b); }
VReg KernelBuilder::ixor(Operand a, Operand b) { return emit_val(Op::kIXor, a, b); }
VReg KernelBuilder::shl(Operand a, Operand b) { return emit_val(Op::kShl, a, b); }
VReg KernelBuilder::shr(Operand a, Operand b) { return emit_val(Op::kShr, a, b); }

VReg KernelBuilder::setp(Cmp cmp, DType dtype, Operand a, Operand b) {
  const VReg dst = vreg();
  Instr ins;
  ins.op = Op::kSetp;
  ins.dst = dst.id;
  ins.a = a;
  ins.b = b;
  ins.cmp = cmp;
  ins.dtype = dtype;
  push(ins);
  return dst;
}

VReg KernelBuilder::selp(Operand pred, Operand if_true, Operand if_false) {
  return emit_val(Op::kSelp, if_true, if_false, pred);
}

VReg KernelBuilder::shfl(Operand value, Operand src_lane, int width) {
  return emit_val(Op::kShfl, value, src_lane, imm_i64(width));
}
VReg KernelBuilder::shfl_up(Operand value, Operand delta, int width) {
  return emit_val(Op::kShflUp, value, delta, imm_i64(width));
}
VReg KernelBuilder::shfl_down(Operand value, Operand delta, int width) {
  return emit_val(Op::kShflDown, value, delta, imm_i64(width));
}
VReg KernelBuilder::shfl_xor(Operand value, Operand lane_mask, int width) {
  return emit_val(Op::kShflXor, value, lane_mask, imm_i64(width));
}

VReg KernelBuilder::lds(Operand addr, std::int64_t offset, MemWidth width) {
  const VReg dst = vreg();
  Instr ins;
  ins.op = Op::kLds;
  ins.dst = dst.id;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.width = width;
  push(ins);
  return dst;
}

void KernelBuilder::sts(Operand addr, Operand value, std::int64_t offset, MemWidth width) {
  Instr ins;
  ins.op = Op::kSts;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.c = value;
  ins.width = width;
  push(ins);
}

VReg KernelBuilder::ldg(Operand addr, std::int64_t offset, MemWidth width) {
  const VReg dst = vreg();
  Instr ins;
  ins.op = Op::kLdg;
  ins.dst = dst.id;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.width = width;
  push(ins);
  return dst;
}

void KernelBuilder::lds_to(VReg dst, Operand addr, std::int64_t offset, MemWidth width) {
  util::require(dst.id >= 0, "lds_to: invalid destination");
  Instr ins;
  ins.op = Op::kLds;
  ins.dst = dst.id;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.width = width;
  push(ins);
}

void KernelBuilder::ldg_to(VReg dst, Operand addr, std::int64_t offset, MemWidth width) {
  util::require(dst.id >= 0, "ldg_to: invalid destination");
  Instr ins;
  ins.op = Op::kLdg;
  ins.dst = dst.id;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.width = width;
  push(ins);
}

void KernelBuilder::stg(Operand addr, Operand value, std::int64_t offset, MemWidth width) {
  Instr ins;
  ins.op = Op::kStg;
  ins.a = addr;
  ins.b = imm_i64(offset);
  ins.c = value;
  ins.width = width;
  push(ins);
}

void KernelBuilder::bar() {
  Instr ins;
  ins.op = Op::kBar;
  push(ins);
}

SReg KernelBuilder::smov(Operand src) { return emit_scalar(Op::kSMov, src); }
SReg KernelBuilder::sadd(Operand a, Operand b) { return emit_scalar(Op::kSAdd, a, b); }
SReg KernelBuilder::ssub(Operand a, Operand b) { return emit_scalar(Op::kSSub, a, b); }
SReg KernelBuilder::smul(Operand a, Operand b) { return emit_scalar(Op::kSMul, a, b); }
SReg KernelBuilder::smin(Operand a, Operand b) { return emit_scalar(Op::kSMin, a, b); }
SReg KernelBuilder::smax(Operand a, Operand b) { return emit_scalar(Op::kSMax, a, b); }

void KernelBuilder::sassign(SReg dst, Operand src) {
  Instr ins;
  ins.op = Op::kSMov;
  ins.dst = dst.id;
  ins.a = src;
  push(ins);
}

void KernelBuilder::loop(Operand trip_count) {
  util::require(trip_count.kind == Operand::Kind::kScalar ||
                    trip_count.kind == Operand::Kind::kImmediate,
                "loop: trip count must be scalar or immediate");
  Instr ins;
  ins.op = Op::kLoop;
  ins.a = trip_count;
  push(ins);
  ++loop_depth_;
}

void KernelBuilder::endloop() {
  util::require(loop_depth_ > 0, "endloop: no open loop");
  Instr ins;
  ins.op = Op::kEndLoop;
  push(ins);
  --loop_depth_;
}

void KernelBuilder::begin_pred(VReg pred, bool negate) {
  util::require(cur_pred_ < 0, "begin_pred: nested predication not supported");
  cur_pred_ = pred.id;
  cur_pred_negate_ = negate;
}

void KernelBuilder::end_pred() {
  util::require(cur_pred_ >= 0, "end_pred: no active predicate");
  cur_pred_ = -1;
  cur_pred_negate_ = false;
}

void KernelBuilder::emit_to(VReg dst, Op op, Operand a, Operand b, Operand c) {
  util::require(dst.id >= 0, "emit_to: invalid destination");
  Instr ins;
  ins.op = op;
  ins.dst = dst.id;
  ins.a = a;
  ins.b = b;
  ins.c = c;
  push(ins);
}

VReg KernelBuilder::emit(Op op, Operand a, Operand b, Operand c) {
  return emit_val(op, a, b, c);
}

Kernel KernelBuilder::build() {
  util::require(!built_, "KernelBuilder: build() may only be called once");
  util::require(loop_depth_ == 0, "build: unterminated loop");
  util::require(cur_pred_ < 0, "build: unterminated predication region");
  built_ = true;

  kernel_.sreg_count = next_sreg_;
  kernel_.smem_bytes = smem_cursor_;

  schedule_instructions(kernel_.code);
  auto intervals = live_intervals(kernel_.code, next_vreg_);
  auto [mapping, phys_count] = linear_scan(std::move(intervals));
  rewrite_registers(kernel_.code, mapping);
  kernel_.vreg_count = phys_count;

  validate(kernel_);
  return kernel_;
}

}  // namespace wsim::simt
