// The lane-vector interpreter: third engine over the DecodedProgram
// stream (see fastpath_engine.hpp for the shared execution core and
// decode.cpp for the metadata it consumes).
//
// Execution model:
//
//   * Unpredicated kSimple/kShuffle instructions (DecodedInstr::vec, baked
//     at decode) compute all 32 lanes in a handful of SIMD vector ops.
//     The kernels are written with GCC/Clang generic vector extensions so
//     one implementation serves three tiers — an AVX-512 and an AVX2
//     variant compiled via target attributes, and a generic variant the
//     compiler lowers to whatever the baseline -march provides. The tier
//     is picked once per process (__builtin_cpu_supports), clamped
//     downgrade-only by WSIM_VECTOR_ISA, and reported by
//     vector_isa_name().
//   * Predicated (divergent) instructions fall back to the masked
//     per-lane scalar handlers inherited from EngineBase — the same code
//     the fast path runs, so the divergence semantics cannot drift.
//   * Loops the decoder marked accel-eligible (DecodedInstr::accel) run a
//     steady-state fast-forward: iterations execute exactly while the
//     warp's relative timing signature is recorded; once two consecutive
//     iterations produce the same signature and the same dynamic inputs
//     (shared-memory replay cycles, single-warp barrier decisions), the
//     remaining iterations run value-only and the timing state is shifted
//     by the steady per-iteration delta. Any deviation in the dynamic
//     inputs retro-applies timing for the executed prefix and finishes
//     the iteration exactly, so the shortcut is bit-identical — including
//     the throw points and messages of cycle-budget and out-of-bounds
//     errors. Tracing disables the shortcut (each instruction must emit
//     its own trace event).
//
// Everything observable — functional outputs, BlockResult counters, SDC
// event numbering, trace contents, error surface — stays bit-identical to
// the fast and legacy engines; interp_equivalence_test and the
// divergence-ratio fuzz test enforce it. Blocks with SDC injection
// enabled delegate to run_block_fast wholesale (injection numbers
// per-lane write events sequentially, which pins the scalar order).

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "wsim/obs/metrics.hpp"
#include "wsim/simt/fastpath_engine.hpp"

namespace wsim::simt {
namespace {

// How much of each accel loop ran exactly (profiling) vs value-only
// (fast-forwarded): the ratio is the lever behind the vector engine's
// micro-chain speedups, so regressions show up directly in metrics dumps.
obs::Counter& accel_exact_iters() {
  static obs::Counter c("simt.vector.accel_exact_iters");
  return c;
}
obs::Counter& accel_value_iters() {
  static obs::Counter c("simt.vector.accel_value_iters");
  return c;
}

using fastdetail::as_i64;
using fastdetail::kBranchCycles;
using fastdetail::kWarpSize;
using fastdetail::Ref;

// --- SIMD kernels -----------------------------------------------------------
//
// One 32-lane register is a row of chunks of the reg-major register
// file; each SIMD tier slices it at its native register width (VecTraits
// below). All kernels are elementwise over the chunk (lane i of the
// result depends only on lane i of the operands), so in-place updates
// (dst aliasing a source register) are safe chunk by chunk.

// This file compiles with -Wno-psabi (see src/CMakeLists.txt): every
// helper touching the wide vector types below is always_inline and
// internal to this translation unit, so the "vector ABI changed" notes
// describe call boundaries that never exist.

#define WSIM_VEC_INLINE __attribute__((always_inline)) inline

/// Per-tier chunk shape: `Lanes` 64-bit register-file lanes per SIMD
/// chunk. Each tier instantiates the shared kernel at its native SIMD
/// register width — 16-byte chunks for the baseline (SSE2) tier, 32-byte
/// for AVX2, 64-byte for AVX-512. Width must match what the target
/// codegen handles natively: GCC lowers wider-than-native generic
/// vectors cleanly when they split in quarters (64 B on SSE) but bounces
/// the mixed-width f32<->u64 bitcasts below through the stack and GPRs
/// when it must pair 32-byte halves (64 B types compiled for AVX2),
/// which costs more than the vectorization saves (measured ~0.5x of the
/// scalar fast path on the register chains).
template <int Lanes>
struct VecTraits;

template <>
struct VecTraits<2> {
  typedef std::uint64_t u64 __attribute__((vector_size(16)));
  typedef std::int64_t i64 __attribute__((vector_size(16)));
  typedef std::int32_t i32 __attribute__((vector_size(16)));
  typedef float f32 __attribute__((vector_size(16)));
  static constexpr int kLanes = 2;
  WSIM_VEC_INLINE static u64 splat(std::uint64_t x) noexcept {
    return u64{x, x};
  }
  WSIM_VEC_INLINE static i64 iota(std::int64_t b) noexcept {
    return i64{b, b + 1};
  }
};

template <>
struct VecTraits<4> {
  typedef std::uint64_t u64 __attribute__((vector_size(32)));
  typedef std::int64_t i64 __attribute__((vector_size(32)));
  typedef std::int32_t i32 __attribute__((vector_size(32)));
  typedef float f32 __attribute__((vector_size(32)));
  static constexpr int kLanes = 4;
  WSIM_VEC_INLINE static u64 splat(std::uint64_t x) noexcept {
    return u64{x, x, x, x};
  }
  WSIM_VEC_INLINE static i64 iota(std::int64_t b) noexcept {
    return i64{b, b + 1, b + 2, b + 3};
  }
};

template <>
struct VecTraits<8> {
  typedef std::uint64_t u64 __attribute__((vector_size(64)));
  typedef std::int64_t i64 __attribute__((vector_size(64)));
  typedef std::int32_t i32 __attribute__((vector_size(64)));
  typedef float f32 __attribute__((vector_size(64)));
  static constexpr int kLanes = 8;
  WSIM_VEC_INLINE static u64 splat(std::uint64_t x) noexcept {
    return u64{x, x, x, x, x, x, x, x};
  }
  WSIM_VEC_INLINE static i64 iota(std::int64_t b) noexcept {
    return i64{b, b + 1, b + 2, b + 3, b + 4, b + 5, b + 6, b + 7};
  }
};

template <class T>
WSIM_VEC_INLINE typename T::u64 vload(const std::uint64_t* p) noexcept {
  typename T::u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <class T>
WSIM_VEC_INLINE void vstore(std::uint64_t* p, typename T::u64 v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

template <class To, class From>
WSIM_VEC_INLINE To vbits(From v) noexcept {
  static_assert(sizeof(To) == sizeof(From));
  To out;
  std::memcpy(&out, &v, sizeof(To));
  return out;
}

template <class T>
WSIM_VEC_INLINE typename T::u64 operand_chunk(const Ref& r, int c) noexcept {
  return r.lanes != nullptr
             ? vload<T>(r.lanes + static_cast<std::size_t>(c) * T::kLanes)
             : T::splat(r.broadcast);
}

template <class T>
WSIM_VEC_INLINE typename T::i64 lane_iota(int c) noexcept {
  return T::iota(static_cast<std::int64_t>(c) * T::kLanes);
}

// Runtime-Cmp comparisons; a vector comparison yields a same-shape signed
// integer mask (-1 true / 0 false). The default mirrors the scalar
// compare()'s `return false`.
template <class T>
WSIM_VEC_INLINE typename T::i32 vcmp_f32(Cmp cmp, typename T::f32 x,
                                         typename T::f32 y) noexcept {
  switch (cmp) {
    case Cmp::kLt: return x < y;
    case Cmp::kLe: return x <= y;
    case Cmp::kGt: return x > y;
    case Cmp::kGe: return x >= y;
    case Cmp::kEq: return x == y;
    case Cmp::kNe: return x != y;
  }
  return typename T::i32{};
}

template <class T>
WSIM_VEC_INLINE typename T::i64 vcmp_i64(Cmp cmp, typename T::i64 x,
                                         typename T::i64 y) noexcept {
  switch (cmp) {
    case Cmp::kLt: return x < y;
    case Cmp::kLe: return x <= y;
    case Cmp::kGt: return x > y;
    case Cmp::kGe: return x >= y;
    case Cmp::kEq: return x == y;
    case Cmp::kNe: return x != y;
  }
  return typename T::i64{};
}

/// Resolved inputs of one vectorized kSimple instruction.
struct VecArgs {
  std::uint64_t* dst = nullptr;
  Ref a;
  Ref b;
  Ref c;
  Cmp cmp = Cmp::kLt;
  std::int64_t base_tid = 0;
  std::int64_t warp_index = 0;
};

/// All 32 lanes of one LaneOp, semantically identical to lane_apply() per
/// lane. f32 payloads live in the low 32 bits of each 64-bit lane: the
/// chunk is reinterpreted as 16 floats, the op computed elementwise (odd
/// slots hold the high garbage and are discarded), and the result masked
/// back to a zero-extended low word — exactly from_f32(op(as_f32(...))).
/// min/max select one unmodified input via the same (x < y) predicate as
/// std::min/std::max, so NaN handling and -0.0/+0.0 selection match the
/// scalar path bit for bit. FFma relies on the global -ffp-contract=off:
/// a contracted mul+add would change the f32 rounding against the scalar
/// engines.
template <LaneOp L, class T>
WSIM_VEC_INLINE void vec_exec(const VecArgs& x) noexcept {
  if constexpr (L == LaneOp::kNop) {
    (void)x;  // never dispatched: decode only marks vec on lane != kNop
  } else {
    using U64 = typename T::u64;
    using I64 = typename T::i64;
    using I32 = typename T::i32;
    using F32 = typename T::f32;
    const U64 f32_mask = T::splat(0xFFFFFFFFu);
    constexpr int chunks = kWarpSize / T::kLanes;
    for (int c = 0; c < chunks; ++c) {
      U64 r;
      if constexpr (L == LaneOp::kMov) {
        r = operand_chunk<T>(x.a, c);
      } else if constexpr (L == LaneOp::kTid) {
        r = vbits<U64>(I64(lane_iota<T>(c) + x.base_tid));
      } else if constexpr (L == LaneOp::kLaneId) {
        r = vbits<U64>(lane_iota<T>(c));
      } else if constexpr (L == LaneOp::kWarpId) {
        r = T::splat(static_cast<std::uint64_t>(x.warp_index));
      } else if constexpr (L == LaneOp::kFAdd || L == LaneOp::kFSub ||
                           L == LaneOp::kFMul) {
        const F32 a = vbits<F32>(operand_chunk<T>(x.a, c));
        const F32 b = vbits<F32>(operand_chunk<T>(x.b, c));
        F32 f;
        if constexpr (L == LaneOp::kFAdd) {
          f = a + b;
        } else if constexpr (L == LaneOp::kFSub) {
          f = a - b;
        } else {
          f = a * b;
        }
        r = vbits<U64>(f) & f32_mask;
      } else if constexpr (L == LaneOp::kFFma) {
        const F32 a = vbits<F32>(operand_chunk<T>(x.a, c));
        const F32 b = vbits<F32>(operand_chunk<T>(x.b, c));
        const F32 cc = vbits<F32>(operand_chunk<T>(x.c, c));
        const F32 f = a * b + cc;
        r = vbits<U64>(f) & f32_mask;
      } else if constexpr (L == LaneOp::kFMax || L == LaneOp::kFMin) {
        const F32 a = vbits<F32>(operand_chunk<T>(x.a, c));
        const F32 b = vbits<F32>(operand_chunk<T>(x.b, c));
        I32 m;
        if constexpr (L == LaneOp::kFMax) {
          m = a < b;
        } else {
          m = b < a;
        }
        const F32 f = m ? b : a;
        r = vbits<U64>(f) & f32_mask;
      } else if constexpr (L == LaneOp::kIAdd || L == LaneOp::kISub ||
                           L == LaneOp::kIMul) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        if constexpr (L == LaneOp::kIAdd) {
          r = vbits<U64>(I64(a + b));
        } else if constexpr (L == LaneOp::kISub) {
          r = vbits<U64>(I64(a - b));
        } else {
          r = vbits<U64>(I64(a * b));
        }
      } else if constexpr (L == LaneOp::kIMax || L == LaneOp::kIMin) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        I64 m;
        if constexpr (L == LaneOp::kIMax) {
          m = a < b;
        } else {
          m = b < a;
        }
        r = vbits<U64>(I64(m ? b : a));
      } else if constexpr (L == LaneOp::kIAnd) {
        r = operand_chunk<T>(x.a, c) & operand_chunk<T>(x.b, c);
      } else if constexpr (L == LaneOp::kIOr) {
        r = operand_chunk<T>(x.a, c) | operand_chunk<T>(x.b, c);
      } else if constexpr (L == LaneOp::kIXor) {
        r = operand_chunk<T>(x.a, c) ^ operand_chunk<T>(x.b, c);
      } else if constexpr (L == LaneOp::kShl) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        r = vbits<U64>(I64(a << (b & 63)));
      } else if constexpr (L == LaneOp::kShr) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        r = vbits<U64>(I64(a >> (b & 63)));
      } else if constexpr (L == LaneOp::kSetpF32) {
        const F32 a = vbits<F32>(operand_chunk<T>(x.a, c));
        const F32 b = vbits<F32>(operand_chunk<T>(x.b, c));
        // Bit 0 of the 64-bit lane is bit 0 of the payload slot's mask.
        r = vbits<U64>(vcmp_f32<T>(x.cmp, a, b)) & T::splat(1);
      } else if constexpr (L == LaneOp::kSetpI64) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        r = vbits<U64>(I64(vcmp_i64<T>(x.cmp, a, b))) & T::splat(1);
      } else if constexpr (L == LaneOp::kSelp) {
        const I64 a = vbits<I64>(operand_chunk<T>(x.a, c));
        const I64 b = vbits<I64>(operand_chunk<T>(x.b, c));
        const I64 cc = vbits<I64>(operand_chunk<T>(x.c, c));
        const I64 m = cc != 0;
        r = vbits<U64>(I64(m ? a : b));
      } else {
        r = T::splat(0);
      }
      vstore<T>(x.dst + static_cast<std::size_t>(c) * T::kLanes, r);
    }
  }
}

/// Predicated variant: computes all 32 lanes full-width into a scratch
/// buffer, then blends under the predicate so inactive lanes keep their
/// old destination bits — exactly the per-lane fallback's skip semantics.
/// Running inactive lanes speculatively is safe because every lane op is
/// a pure elementwise function: no lane-crossing reads, no memory access,
/// and no trapping math (FP exceptions are not enabled).
template <LaneOp L, class T>
WSIM_VEC_INLINE void vec_exec_masked(const VecArgs& x, const std::uint64_t* pv,
                                     bool negate) noexcept {
  if constexpr (L == LaneOp::kNop) {
    // Never dispatched (decode requires lane != kNop), and a nop writes
    // nothing, so there is no result to blend.
    (void)x;
    (void)pv;
    (void)negate;
  } else {
    using U64 = typename T::u64;
    using I64 = typename T::i64;
    alignas(64) std::uint64_t tmp[fastdetail::kWarpSize];
    VecArgs t = x;
    t.dst = tmp;
    vec_exec<L, T>(t);
    constexpr int chunks = kWarpSize / T::kLanes;
    for (int c = 0; c < chunks; ++c) {
      const std::size_t off = static_cast<std::size_t>(c) * T::kLanes;
      const I64 active = (vbits<I64>(vload<T>(pv + off)) != I64{});
      const I64 tv = vbits<I64>(vload<T>(tmp + off));
      const I64 ov = vbits<I64>(vload<T>(x.dst + off));
      const I64 r = negate ? I64(active ? ov : tv) : I64(active ? tv : ov);
      vstore<T>(x.dst + off, vbits<U64>(r));
    }
  }
}

// --- per-tier instantiations ------------------------------------------------
//
// The generic wrappers compile at the translation unit's baseline -march
// over 16-byte chunks; the target-attributed twins re-instantiate the
// same always_inline kernel under AVX2 / AVX-512 codegen at that tier's
// native chunk width. Inlining a lower-target callee into a
// higher-target caller is legal, so one vec_exec serves all tiers.

using VecFn = void (*)(const VecArgs&);
using MaskedVecFn = void (*)(const VecArgs&, const std::uint64_t*, bool);

template <LaneOp L>
void vec_op_generic(const VecArgs& x) {
  vec_exec<L, VecTraits<2>>(x);
}

template <LaneOp L>
void vec_op_masked_generic(const VecArgs& x, const std::uint64_t* pv, bool negate) {
  vec_exec_masked<L, VecTraits<2>>(x, pv, negate);
}

#if defined(__x86_64__)
template <LaneOp L>
__attribute__((target("avx2"))) void vec_op_avx2(const VecArgs& x) {
  vec_exec<L, VecTraits<4>>(x);
}

template <LaneOp L>
__attribute__((target("avx2"))) void vec_op_masked_avx2(const VecArgs& x,
                                                        const std::uint64_t* pv,
                                                        bool negate) {
  vec_exec_masked<L, VecTraits<4>>(x, pv, negate);
}

template <LaneOp L>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void vec_op_avx512(
    const VecArgs& x) {
  vec_exec<L, VecTraits<8>>(x);
}

template <LaneOp L>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void vec_op_masked_avx512(
    const VecArgs& x, const std::uint64_t* pv, bool negate) {
  vec_exec_masked<L, VecTraits<8>>(x, pv, negate);
}
#endif

template <std::size_t... I>
constexpr std::array<VecFn, kNumLaneOps> make_generic_table(std::index_sequence<I...>) {
  return {{&vec_op_generic<static_cast<LaneOp>(I)>...}};
}

template <std::size_t... I>
constexpr std::array<MaskedVecFn, kNumLaneOps> make_masked_generic_table(
    std::index_sequence<I...>) {
  return {{&vec_op_masked_generic<static_cast<LaneOp>(I)>...}};
}

inline constexpr auto kVecTableGeneric =
    make_generic_table(std::make_index_sequence<kNumLaneOps>{});
inline constexpr auto kMaskedTableGeneric =
    make_masked_generic_table(std::make_index_sequence<kNumLaneOps>{});

#if defined(__x86_64__)
template <std::size_t... I>
constexpr std::array<VecFn, kNumLaneOps> make_avx2_table(std::index_sequence<I...>) {
  return {{&vec_op_avx2<static_cast<LaneOp>(I)>...}};
}

template <std::size_t... I>
constexpr std::array<VecFn, kNumLaneOps> make_avx512_table(std::index_sequence<I...>) {
  return {{&vec_op_avx512<static_cast<LaneOp>(I)>...}};
}

template <std::size_t... I>
constexpr std::array<MaskedVecFn, kNumLaneOps> make_masked_avx2_table(
    std::index_sequence<I...>) {
  return {{&vec_op_masked_avx2<static_cast<LaneOp>(I)>...}};
}

template <std::size_t... I>
constexpr std::array<MaskedVecFn, kNumLaneOps> make_masked_avx512_table(
    std::index_sequence<I...>) {
  return {{&vec_op_masked_avx512<static_cast<LaneOp>(I)>...}};
}

inline constexpr auto kVecTableAvx2 =
    make_avx2_table(std::make_index_sequence<kNumLaneOps>{});
inline constexpr auto kVecTableAvx512 =
    make_avx512_table(std::make_index_sequence<kNumLaneOps>{});
inline constexpr auto kMaskedTableAvx2 =
    make_masked_avx2_table(std::make_index_sequence<kNumLaneOps>{});
inline constexpr auto kMaskedTableAvx512 =
    make_masked_avx512_table(std::make_index_sequence<kNumLaneOps>{});
#endif

// --- tier selection ---------------------------------------------------------

enum class VecIsa : int { kGeneric = 0, kAvx2 = 1, kAvx512 = 2 };

VecIsa detect_vec_isa() noexcept {
  VecIsa best = VecIsa::kGeneric;
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) {
    best = VecIsa::kAvx2;
  }
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl")) {
    best = VecIsa::kAvx512;
  }
#endif
  const char* env = std::getenv("WSIM_VECTOR_ISA");
  if (env != nullptr) {
    const std::string_view name(env);
    const VecIsa requested = name == "generic"  ? VecIsa::kGeneric
                             : name == "avx2"   ? VecIsa::kAvx2
                             : name == "avx512" ? VecIsa::kAvx512
                                                : best;
    // Downgrade-only: a requested tier the CPU lacks falls back to the
    // detected one; asking for less than the CPU offers always works.
    if (static_cast<int>(requested) < static_cast<int>(best)) {
      best = requested;
    }
  }
  return best;
}

VecIsa active_vec_isa() noexcept {
  static const VecIsa isa = detect_vec_isa();
  return isa;
}

const std::array<VecFn, kNumLaneOps>& active_vec_table() noexcept {
#if defined(__x86_64__)
  switch (active_vec_isa()) {
    case VecIsa::kAvx512: return kVecTableAvx512;
    case VecIsa::kAvx2: return kVecTableAvx2;
    case VecIsa::kGeneric: break;
  }
#endif
  return kVecTableGeneric;
}

const std::array<MaskedVecFn, kNumLaneOps>& active_masked_table() noexcept {
#if defined(__x86_64__)
  switch (active_vec_isa()) {
    case VecIsa::kAvx512: return kMaskedTableAvx512;
    case VecIsa::kAvx2: return kMaskedTableAvx2;
    case VecIsa::kGeneric: break;
  }
#endif
  return kMaskedTableGeneric;
}

// --- the engine -------------------------------------------------------------

struct VectorEngine final : fastdetail::EngineBase<VectorEngine> {
  using Base = fastdetail::EngineBase<VectorEngine>;

  VectorEngine(const DecodedProgram& prog, const DeviceSpec& device,
               GlobalMemory& gmem, std::span<const std::uint64_t> scalar_args,
               const BlockRunOptions& options)
      : Base(prog, device, gmem, scalar_args, options),
        vt_(active_vec_table()),
        mt_(active_masked_table()) {}

  /// Shadows EngineBase's dispatch loop (run() calls it via CRTP):
  /// vectorized handlers for DecodedInstr::vec, the steady-state
  /// fast-forward for accel loops, and the inherited scalar step() for
  /// everything else. Fused groups execute constituent-at-a-time — fusion
  /// is a scalar-path dispatch optimization, and constituent order is
  /// exactly what the handlers replicate, so skipping it changes nothing
  /// observable.
  void run_until_barrier(Warp& warp) {
    const DecodedInstr* code = prog_.code.data();
    const std::size_t n = prog_.code.size();
    const bool single_warp = prog_.warps == 1;
    while (warp.pc < n) {
      const DecodedInstr& d = code[warp.pc];
      switch (d.cls) {
        case ExecClass::kBar:
          if (single_warp) {
            // One warp: run()'s rendezvous would release immediately at
            // this warp's own cursor; apply it inline (bit-identical
            // counters, trace entry, and clock updates) instead of
            // parking and round-tripping through run().
            if (bar_taken(warp, d)) {
              apply_bar(warp, d);
            }
            ++warp.pc;
            continue;
          }
          if (handle_barrier(warp, d)) {
            return;
          }
          continue;
        case ExecClass::kSimple:
          if (d.vec) {
            exec_simple_vec(warp, d);
            ++warp.pc;
            continue;
          }
          if (d.vec_masked) {
            exec_simple_vec_masked(warp, d);
            ++warp.pc;
            continue;
          }
          break;
        case ExecClass::kShuffle:
          if (d.vec) {
            exec_shuffle_vec(warp, d);
            ++warp.pc;
            continue;
          }
          break;
        case ExecClass::kLoop:
          // Tracing needs one event per executed instruction, which the
          // value-only iterations would not emit.
          if (d.accel >= 0 && trace_ == nullptr) {
            exec_accel_loop(warp, d);
            continue;  // pc advanced past the matching kEndLoop
          }
          break;
        default:
          break;
      }
      step(warp, d);
      ++warp.pc;
    }
    warp.done = true;
  }

 private:
  // --- vectorized handlers --------------------------------------------------

  void exec_simple_vec(Warp& warp, const DecodedInstr& d) {
    count_issue(d);
    const long long start = issue_start(warp, d);
    vec_values_simple(warp, d);
    finish(warp, d, start, d.latency);
  }

  VecArgs make_vec_args(Warp& warp, const DecodedInstr& d) const noexcept {
    VecArgs x;
    x.dst = &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize];
    x.a = ref(warp, d.a);
    x.b = ref(warp, d.b);
    x.c = ref(warp, d.c);
    x.cmp = d.cmp;
    x.base_tid = static_cast<std::int64_t>(warp.warp_index) * kWarpSize;
    x.warp_index = warp.warp_index;
    return x;
  }

  void vec_values_simple(Warp& warp, const DecodedInstr& d) {
    vt_[static_cast<std::size_t>(d.lane)](make_vec_args(warp, d));
  }

  void exec_simple_vec_masked(Warp& warp, const DecodedInstr& d) {
    count_issue(d);
    const long long start = issue_start(warp, d);
    vec_values_simple_masked(warp, d);
    finish(warp, d, start, d.latency);
  }

  void vec_values_simple_masked(Warp& warp, const DecodedInstr& d) {
    mt_[static_cast<std::size_t>(d.lane)](
        make_vec_args(warp, d),
        &warp.v[static_cast<std::size_t>(d.pred) * kWarpSize], d.pred_negate);
  }

  void exec_shuffle_vec(Warp& warp, const DecodedInstr& d) {
    count_issue(d);
    const long long start = issue_start(warp, d);
    shuffle_values(warp, d);
    finish(warp, d, start, d.latency);
  }

  /// Unpredicated shuffle: the source lanes are copied out first (as the
  /// scalar handler does), then the common uniform full-width cases
  /// collapse to one or two memcpys / a splat; anything else gathers
  /// per-lane with the shared shuffle_source().
  void shuffle_values(Warp& warp, const DecodedInstr& d) {
    const Ref a = ref(warp, d.a);
    const Ref b = ref(warp, d.b);
    const Ref c = ref(warp, d.c);
    const auto width = static_cast<int>(as_i64(c.value(0)));
    util::require(width > 0 && width <= kWarpSize && (width & (width - 1)) == 0,
                  "shuffle width must be a power of two in [1, 32]");
    std::array<std::uint64_t, kWarpSize> source;
    if (a.lanes != nullptr) {
      std::memcpy(source.data(), a.lanes, sizeof(source));
    } else {
      source.fill(a.broadcast);
    }
    std::uint64_t* dst = &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize];
    if (b.lanes == nullptr && width == kWarpSize) {
      const auto arg = static_cast<int>(as_i64(b.broadcast));
      const auto head = static_cast<std::size_t>(arg);
      switch (d.op) {
        case Op::kShfl: {
          int idx = arg % kWarpSize;
          if (idx < 0) {
            idx += kWarpSize;
          }
          std::fill_n(dst, kWarpSize, source[static_cast<std::size_t>(idx)]);
          return;
        }
        case Op::kShflUp:
          // Lanes below `arg` keep their own value, the rest read from
          // `arg` lanes down. Out-of-range args are the identity.
          if (arg <= 0 || arg >= kWarpSize) {
            std::memcpy(dst, source.data(), sizeof(source));
          } else {
            std::memcpy(dst, source.data(), head * sizeof(std::uint64_t));
            std::memcpy(dst + head, source.data(),
                        (kWarpSize - head) * sizeof(std::uint64_t));
          }
          return;
        case Op::kShflDown:
          if (arg <= 0 || arg >= kWarpSize) {
            std::memcpy(dst, source.data(), sizeof(source));
          } else {
            std::memcpy(dst, source.data() + head,
                        (kWarpSize - head) * sizeof(std::uint64_t));
            std::memcpy(dst + (kWarpSize - head), source.data() + (kWarpSize - head),
                        head * sizeof(std::uint64_t));
          }
          return;
        case Op::kShflXor:
          // lane ^ arg stays in [0, 32) for every lane exactly when
          // 0 <= arg < 32; otherwise every lane keeps its own value.
          if (arg <= 0 || arg >= kWarpSize) {
            std::memcpy(dst, source.data(), sizeof(source));
          } else {
            for (int lane = 0; lane < kWarpSize; ++lane) {
              dst[static_cast<std::size_t>(lane)] =
                  source[static_cast<std::size_t>(lane ^ arg)];
            }
          }
          return;
        default:
          break;
      }
    }
    for (int lane = 0; lane < kWarpSize; ++lane) {
      const int src = shuffle_source(d.op, lane, width,
                                     static_cast<int>(as_i64(b.value(lane))));
      dst[static_cast<std::size_t>(lane)] = source[static_cast<std::size_t>(src)];
    }
  }

  // --- single-warp barrier --------------------------------------------------

  bool bar_taken(const Warp& warp, const DecodedInstr& d) const noexcept {
    if (d.pred < 0) {
      return true;
    }
    const std::uint64_t* pv = pred_lanes(warp, d);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(pv, d.pred_negate, lane)) {
        return true;
      }
    }
    return false;
  }

  /// Counters, trace entry, and clock updates of a taken single-warp
  /// barrier, in the exact order handle_barrier() + run()'s rendezvous
  /// apply them.
  void apply_bar(Warp& warp, const DecodedInstr& d) {
    count_issue(d);
    const long long released = warp.cursor + dev_.lat.sync_barrier;
    if (trace_ != nullptr) {
      trace_->add({"bar.sync", warp.warp_index, warp.cursor, released});
    }
    warp.cursor = released;
    warp.last_complete = std::max(warp.last_complete, released);
    result_.barriers += 1;
  }

  // --- steady-state loop fast-forward ---------------------------------------
  //
  // An accel-eligible body (decode.cpp) has no global memory, no nested
  // loops, and barriers only in single-warp programs, so one iteration's
  // timing is a pure function of (a) the warp's timing state relative to
  // its own cursor at the loop head and (b) the dynamic inputs: per-access
  // bank-conflict replay cycles and per-barrier taken/skipped decisions.
  // Iterations run exactly — recording the relative signature and the
  // dynamic inputs — until two consecutive iterations match; from then on
  // iterations run value-only and the timing state shifts by the constant
  // per-iteration delta. Values still execute in full (register writes,
  // shared-memory traffic, every counter), so only redundant scoreboard
  // arithmetic is skipped.
  //
  // Bit-identity notes, load-bearing:
  //  * Read-only registers' ready cells are frozen; the signature clamps
  //    them at zero because once ready at-or-before the head cursor they
  //    can never gate issue again (the cursor is monotone). While still
  //    in flight their relative value strictly decreases, so a signature
  //    containing one never matches — the shortcut waits them out.
  //  * cur_cycle's -1 sentinel and a stale last_complete likewise
  //    decrease relative to the advancing cursor and block the match, so
  //    the delta shift below only ever runs on states it reproduces
  //    exactly.
  //  * The cycle budget is pre-projected over every value iteration
  //    (intra-iteration peaks are bounded by the end-of-iteration
  //    max(cursor, last_complete), both monotone); if the projection
  //    trips, the shortcut is declined and the exact path throws at the
  //    bit-identical instruction.
  //  * A dynamic-input deviation retro-applies the executed prefix's
  //    timing (timing never reads register values, so applying it after
  //    the value effects is order-equivalent) and finishes that
  //    iteration exactly.

  void exec_accel_loop(Warp& warp, const DecodedInstr& dl) {
    const std::size_t begin = warp.pc;
    const std::size_t end = dl.match;
    const DecodedInstr& de = prog_.code[end];
    al_ = &prog_.accel_loops[static_cast<std::size_t>(dl.accel)];
    plan_built_ = false;

    // kLoop issue, exactly as step():
    count_issue(dl);
    const std::int64_t trips = as_i64(scalar_operand(warp, dl.a));
    warp.cursor += dev_.lat.issue_interval;
    if (trips <= 0) {
      warp.pc = end + 1;
      return;
    }

    std::int64_t remaining = trips;
    std::int64_t exact_iters = 0;
    std::int64_t value_iters = 0;
    bool have_prev = false;
    while (remaining > 0) {
      run_iteration_exact(warp, begin, end, de);
      --remaining;
      ++exact_iters;
      const long long head = warp.cursor;
      if (have_prev && remaining > 0 && sig_cur_ == sig_prev_ && dyn_cur_ == dyn_prev_) {
        delta_ = head - head_prev_;
        if (!plan_built_) {
          build_value_plan(warp, begin, end);
          plan_built_ = true;
        }
        const std::int64_t done = run_value_phase(warp, begin, end, de, remaining);
        remaining -= done;
        value_iters += done;
        if (done != 0) {
          // Either all remaining iterations completed or a deviation
          // finished one exactly; re-establish the profile before
          // shortcutting again.
          have_prev = false;
          continue;
        }
        // The budget projection declined the shortcut: keep stepping
        // exactly so any overrun throws at the true instruction.
      }
      sig_prev_.swap(sig_cur_);
      dyn_prev_.swap(dyn_cur_);
      head_prev_ = head;
      have_prev = true;
    }
    accel_exact_iters().add(static_cast<std::uint64_t>(exact_iters));
    accel_value_iters().add(static_cast<std::uint64_t>(value_iters));
    warp.pc = end + 1;
  }

  /// One exact iteration (body + kEndLoop bookkeeping), recording the
  /// head-relative timing signature, the dynamic inputs, and the peak
  /// cycle offset for the budget projection.
  void run_iteration_exact(Warp& warp, std::size_t begin, std::size_t end,
                           const DecodedInstr& de) {
    const long long head = warp.cursor;
    dyn_cur_.clear();
    const DecodedInstr* code = prog_.code.data();
    for (std::size_t pc = begin + 1; pc < end; ++pc) {
      const DecodedInstr& d = code[pc];
      switch (d.cls) {
        case ExecClass::kSimple:
          if (d.vec) {
            exec_simple_vec(warp, d);
          } else if (d.vec_masked) {
            exec_simple_vec_masked(warp, d);
          } else {
            step(warp, d);
          }
          break;
        case ExecClass::kShuffle:
          if (d.vec) {
            exec_shuffle_vec(warp, d);
          } else {
            step(warp, d);
          }
          break;
        case ExecClass::kLds:
        case ExecClass::kSts: {
          count_issue(d);
          const long long start = issue_start(warp, d);
          const long long replay = exec_smem(warp, d, pred_lanes(warp, d));
          dyn_cur_.push_back(replay);
          finish(warp, d, start, d.latency + replay);
          break;
        }
        case ExecClass::kBar: {
          const bool taken = bar_taken(warp, d);
          dyn_cur_.push_back(taken ? 1 : 0);
          if (taken) {
            apply_bar(warp, d);
          }
          break;
        }
        default:
          step(warp, d);  // kScalar
          break;
      }
    }
    count_issue(de);
    warp.cursor += kBranchCycles;
    record_signature(warp);
    peak_rel_ = std::max(warp.cursor, warp.last_complete) - head;
  }

  void record_signature(const Warp& warp) {
    sig_cur_.clear();
    const long long c = warp.cursor;
    sig_cur_.push_back(warp.cur_cycle - c);
    sig_cur_.push_back(warp.last_complete - c);
    sig_cur_.push_back(warp.issued_this_cycle);
    for (const std::int16_t r : al_->vregs_written) {
      sig_cur_.push_back(warp.vready[static_cast<std::size_t>(r)] - c);
    }
    for (const std::int16_t r : al_->sregs_written) {
      sig_cur_.push_back(warp.sready[static_cast<std::size_t>(r)] - c);
    }
    for (const std::int16_t r : al_->vregs_read) {
      sig_cur_.push_back(std::max(warp.vready[static_cast<std::size_t>(r)] - c, 0LL));
    }
    for (const std::int16_t r : al_->sregs_read) {
      sig_cur_.push_back(std::max(warp.sready[static_cast<std::size_t>(r)] - c, 0LL));
    }
  }

  // --- precompiled value-phase plan -----------------------------------------
  //
  // Once the steady profile is established, every remaining iteration
  // executes the same body with the same dispatch decisions, and any
  // register the body does not list in vregs_written/sregs_written is
  // loop-invariant for the rest of the activation (deviations re-execute
  // the same body, so stability survives them too). The plan resolves all
  // of that once per activation: handler pointers and operand Refs are
  // pre-bound, loop-invariant shuffles collapse to a precomputed
  // permutation gather, and loop-invariant predicate masks turn the
  // shared-memory lane scan into a walk over set bits. Anything unstable
  // (scalar operands the body writes, predicates the body writes) keeps
  // per-iteration re-resolution, so the plan changes dispatch cost only —
  // every value, counter, and dynamic input is produced exactly as the
  // unplanned walk produced it.

  struct PlanOp {
    enum class Kind : std::uint8_t {
      kVec,          ///< pre-bound SIMD kSimple
      kVecDyn,       ///< SIMD kSimple, operands re-resolved per iteration
      kVecMasked,    ///< pre-bound masked SIMD kSimple
      kVecMaskedDyn,
      kShufflePerm,  ///< loop-invariant shuffle: precomputed gather
      kShuffle,      ///< shuffle fallback (unstable sources or width)
      kSimple,       ///< scalar kSimple table fallback (lane == kNop)
      kScalarOp,
      kSmemMask,     ///< kLds/kSts with loop-invariant active mask
      kSmem,         ///< kLds/kSts, predicate re-evaluated per iteration
      kBar,
    };
    Kind kind = Kind::kSimple;
    bool negate = false;                ///< masked-blend polarity
    std::uint32_t pc = 0;               ///< for finish_deviated_iteration
    const DecodedInstr* d = nullptr;
    VecFn fn = nullptr;                 ///< kVec / kVecDyn
    MaskedVecFn mfn = nullptr;          ///< kVecMasked / kVecMaskedDyn
    const std::uint64_t* pv = nullptr;  ///< masked-blend predicate lanes
    const std::uint64_t* src = nullptr; ///< kShufflePerm source register
    std::uint64_t* dst = nullptr;       ///< kShufflePerm destination
    std::uint64_t lane_mask = 0;        ///< kSmemMask active lanes (bit i = lane i)
    VecArgs args;                       ///< kVec* pre-resolved inputs
    std::array<std::uint8_t, kWarpSize> perm{};  ///< kShufflePerm lane sources
  };

  static bool reg_in(const std::vector<std::int16_t>& regs, int reg) noexcept {
    return std::find(regs.begin(), regs.end(), static_cast<std::int16_t>(reg)) !=
           regs.end();
  }

  /// True when the operand's Ref snapshot stays valid for the whole
  /// activation: vector Refs hold a pointer (values are re-read through
  /// it), scalar Refs snapshot the value, so only a scalar register the
  /// body writes goes stale.
  bool ref_stable(const Operand& o) const noexcept {
    return o.kind != Operand::Kind::kScalar || !reg_in(al_->sregs_written, o.reg);
  }

  /// True when the operand's *value* is loop-invariant — required when a
  /// value is baked into the plan itself (shuffle source indices, widths).
  bool value_stable(const Operand& o) const noexcept {
    switch (o.kind) {
      case Operand::Kind::kVector:
        return !reg_in(al_->vregs_written, o.reg);
      case Operand::Kind::kScalar:
        return !reg_in(al_->sregs_written, o.reg);
      case Operand::Kind::kImmediate:
      case Operand::Kind::kNone:
        break;
    }
    return true;
  }

  std::uint64_t active_mask(const Warp& warp, const DecodedInstr& d) const noexcept {
    if (d.pred < 0) {
      return 0xFFFFFFFFull;
    }
    const std::uint64_t* pv = pred_lanes(warp, d);
    std::uint64_t mask = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(pv, d.pred_negate, lane)) {
        mask |= 1ULL << lane;
      }
    }
    return mask;
  }

  void build_value_plan(Warp& warp, std::size_t begin, std::size_t end) {
    plan_.clear();
    plan_.reserve(end - begin - 1);
    const DecodedInstr* code = prog_.code.data();
    for (std::size_t pc = begin + 1; pc < end; ++pc) {
      const DecodedInstr& d = code[pc];
      PlanOp p;
      p.pc = static_cast<std::uint32_t>(pc);
      p.d = &d;
      switch (d.cls) {
        case ExecClass::kSimple:
          if (d.vec || d.vec_masked) {
            const bool stable =
                ref_stable(d.a) && ref_stable(d.b) && ref_stable(d.c);
            p.args = make_vec_args(warp, d);
            if (d.vec) {
              p.fn = vt_[static_cast<std::size_t>(d.lane)];
              p.kind = stable ? PlanOp::Kind::kVec : PlanOp::Kind::kVecDyn;
            } else {
              p.mfn = mt_[static_cast<std::size_t>(d.lane)];
              p.pv = &warp.v[static_cast<std::size_t>(d.pred) * kWarpSize];
              p.negate = d.pred_negate;
              p.kind =
                  stable ? PlanOp::Kind::kVecMasked : PlanOp::Kind::kVecMaskedDyn;
            }
          } else {
            p.kind = PlanOp::Kind::kSimple;
          }
          break;
        case ExecClass::kShuffle:
          if (d.vec && d.a.kind == Operand::Kind::kVector &&
              value_stable(d.b) && value_stable(d.c)) {
            // Width and every lane's source index are loop-invariant (and
            // the width was already validated by the exact iterations), so
            // the shuffle collapses to one precomputed gather.
            const Ref b = ref(warp, d.b);
            const Ref c = ref(warp, d.c);
            const auto width = static_cast<int>(as_i64(c.value(0)));
            for (int lane = 0; lane < kWarpSize; ++lane) {
              p.perm[static_cast<std::size_t>(lane)] = static_cast<std::uint8_t>(
                  shuffle_source(d.op, lane, width,
                                 static_cast<int>(as_i64(b.value(lane)))));
            }
            p.src = &warp.v[static_cast<std::size_t>(d.a.reg) * kWarpSize];
            p.dst = &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize];
            p.kind = PlanOp::Kind::kShufflePerm;
          } else {
            p.kind = PlanOp::Kind::kShuffle;
          }
          break;
        case ExecClass::kScalar:
          p.kind = PlanOp::Kind::kScalarOp;
          break;
        case ExecClass::kLds:
        case ExecClass::kSts:
          if (d.pred < 0 || al_->pred_stable[pc - begin - 1] != 0) {
            p.lane_mask = active_mask(warp, d);
            p.kind = PlanOp::Kind::kSmemMask;
          } else {
            p.kind = PlanOp::Kind::kSmem;
          }
          break;
        case ExecClass::kBar:
          p.kind = PlanOp::Kind::kBar;
          break;
        default:
          p.kind = PlanOp::Kind::kSimple;  // unreachable: decode admits no
          break;                           // other class into an accel body
      }
      plan_.push_back(p);
    }
  }

  /// exec_smem with the active-lane set precomputed: identical walk order
  /// (ascending lanes), word dedup, bounds check, transaction math, and
  /// counter updates — only the per-lane predicate test is gone, which is
  /// the bulk of the cost when few lanes are active.
  long long exec_smem_mask(Warp& warp, const DecodedInstr& d, std::uint64_t mask) {
    const Ref a = ref(warp, d.a);
    const Ref b = ref(warp, d.b);
    const std::int64_t offset = as_i64(b.value(0));
    const std::size_t bytes = d.width == MemWidth::kB1 ? 1 : 4;
    const Ref c = d.cls == ExecClass::kSts ? ref(warp, d.c) : Ref{};
    std::uint64_t* dst = d.cls == ExecClass::kLds
                             ? &warp.v[static_cast<std::size_t>(d.dst) * kWarpSize]
                             : nullptr;
    std::array<std::int64_t, kWarpSize> words;  // only [0, n_words) is read
    int n_words = 0;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const int lane = __builtin_ctzll(m);
      const std::int64_t addr = as_i64(a.value(lane)) + offset;
      // Message built only on failure, as in exec_smem.
      if (addr < 0 ||
          static_cast<std::size_t>(addr) + bytes > smem_.size()) [[unlikely]] {
        util::require(false,
                      "shared memory access out of bounds in kernel " + prog_.name);
      }
      const std::int64_t word = addr / 4;
      bool seen = false;
      for (int k = 0; k < n_words; ++k) {
        if (words[static_cast<std::size_t>(k)] == word) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        words[static_cast<std::size_t>(n_words++)] = word;
      }
      if (d.cls == ExecClass::kLds) {
        dst[static_cast<std::size_t>(lane)] =
            fastdetail::load_bits(smem_.data() + addr, d.width);
      } else {
        const std::uint64_t value =
            maybe_corrupt(c.value(lane), SdcSite::kSmemStore);
        std::memcpy(smem_.data() + addr, &value, bytes);
      }
    }
    std::size_t transactions = mask != 0 ? 1 : 0;
    for (int i = 1; i < n_words; ++i) {
      std::size_t same_bank = 1;
      const std::int64_t bank = words[static_cast<std::size_t>(i)] % dev_.smem_banks;
      for (int j = 0; j < i; ++j) {
        if (words[static_cast<std::size_t>(j)] % dev_.smem_banks == bank) {
          ++same_bank;
        }
      }
      transactions = std::max(transactions, same_bank);
    }
    result_.smem_transactions += transactions;
    return transactions > 1
               ? static_cast<long long>(transactions - 1) * dev_.lat.bank_conflict
               : 0;
  }

  /// Runs up to `target` value-only iterations; returns how many
  /// iterations completed (0 = shortcut declined by the budget
  /// projection; a deviation completes its iteration exactly and is
  /// included in the count).
  std::int64_t run_value_phase(Warp& warp, std::size_t begin, std::size_t end,
                               const DecodedInstr& de, std::int64_t target) {
    if (max_cycles_ > 0) {
      // All terms are non-negative (the cursor is monotone, so delta_ > 0),
      // so a long long overflow can only mean "far past any budget".
      long long projected = 0;
      if (__builtin_mul_overflow(delta_, target - 1, &projected) ||
          __builtin_add_overflow(projected, warp.cursor, &projected) ||
          __builtin_add_overflow(projected, peak_rel_, &projected) ||
          projected > max_cycles_) {
        return 0;
      }
    }
    for (std::int64_t it = 0; it < target; ++it) {
      if (!run_iteration_values(warp, begin, end, de)) {
        return it + 1;
      }
      warp.cursor += delta_;
      warp.cur_cycle += delta_;
      warp.last_complete += delta_;
      for (const std::int16_t r : al_->vregs_written) {
        warp.vready[static_cast<std::size_t>(r)] += delta_;
      }
      for (const std::int16_t r : al_->sregs_written) {
        warp.sready[static_cast<std::size_t>(r)] += delta_;
      }
    }
    return target;
  }

  /// One iteration's value side effects and issue counters, driven by the
  /// precompiled plan and verifying every dynamic input against the
  /// steady profile. Returns false after a deviation (that iteration is
  /// then already completed exactly).
  bool run_iteration_values(Warp& warp, std::size_t begin, std::size_t end,
                            const DecodedInstr& de) {
    std::size_t dyn = 0;
    for (const PlanOp& p : plan_) {
      const DecodedInstr& d = *p.d;
      switch (p.kind) {
        case PlanOp::Kind::kVec:
          count_issue(d);
          p.fn(p.args);
          break;
        case PlanOp::Kind::kVecDyn: {
          count_issue(d);
          VecArgs x = p.args;
          x.a = ref(warp, d.a);
          x.b = ref(warp, d.b);
          x.c = ref(warp, d.c);
          p.fn(x);
          break;
        }
        case PlanOp::Kind::kVecMasked:
          count_issue(d);
          p.mfn(p.args, p.pv, p.negate);
          break;
        case PlanOp::Kind::kVecMaskedDyn: {
          count_issue(d);
          VecArgs x = p.args;
          x.a = ref(warp, d.a);
          x.b = ref(warp, d.b);
          x.c = ref(warp, d.c);
          p.mfn(x, p.pv, p.negate);
          break;
        }
        case PlanOp::Kind::kShufflePerm: {
          count_issue(d);
          std::uint64_t* dst = p.dst;
          if (dst == p.src) {
            // In-place shuffle: gather from a copy, as shuffle_values
            // does via its source array.
            alignas(64) std::uint64_t tmp[kWarpSize];
            std::memcpy(tmp, p.src, sizeof(tmp));
            for (int lane = 0; lane < kWarpSize; ++lane) {
              dst[static_cast<std::size_t>(lane)] =
                  tmp[p.perm[static_cast<std::size_t>(lane)]];
            }
          } else {
            for (int lane = 0; lane < kWarpSize; ++lane) {
              dst[static_cast<std::size_t>(lane)] =
                  p.src[p.perm[static_cast<std::size_t>(lane)]];
            }
          }
          break;
        }
        case PlanOp::Kind::kShuffle:
          count_issue(d);
          if (d.vec) {
            shuffle_values(warp, d);
          } else {
            exec_shuffle(warp, d);
          }
          break;
        case PlanOp::Kind::kSimple:
          count_issue(d);
          fastdetail::kSimpleTableFor<Base>[static_cast<std::size_t>(d.lane)]
                                          [d.pred >= 0 ? 1 : 0](*this, warp, d);
          break;
        case PlanOp::Kind::kScalarOp:
          count_issue(d);
          exec_scalar(warp, d);
          break;
        case PlanOp::Kind::kSmemMask: {
          count_issue(d);
          const long long replay = exec_smem_mask(warp, d, p.lane_mask);
          if (replay != dyn_prev_[dyn]) {
            finish_deviated_iteration(warp, begin, end, de, p.pc, replay);
            return false;
          }
          ++dyn;
          break;
        }
        case PlanOp::Kind::kSmem: {
          count_issue(d);
          const long long replay = exec_smem(warp, d, pred_lanes(warp, d));
          if (replay != dyn_prev_[dyn]) {
            finish_deviated_iteration(warp, begin, end, de, p.pc, replay);
            return false;
          }
          ++dyn;
          break;
        }
        case PlanOp::Kind::kBar: {
          const long long taken = bar_taken(warp, d) ? 1 : 0;
          if (taken != 0) {
            count_issue(d);
            result_.barriers += 1;
          }
          if (taken != dyn_prev_[dyn]) {
            finish_deviated_iteration(warp, begin, end, de, p.pc, taken);
            return false;
          }
          ++dyn;
          break;
        }
      }
    }
    count_issue(de);
    return true;
  }

  /// The dynamic profile broke at `dev_pc` (true input `true_dyn`). Value
  /// effects and issue counters are already applied for the prefix up to
  /// and including dev_pc; every earlier dynamic input matched the steady
  /// profile, so dyn_prev_ holds the true replay history. Retro-apply the
  /// prefix's timing, then finish the iteration fully exactly.
  void finish_deviated_iteration(Warp& warp, std::size_t begin, std::size_t end,
                                 const DecodedInstr& de, std::size_t dev_pc,
                                 long long true_dyn) {
    const DecodedInstr* code = prog_.code.data();
    std::size_t dyn = 0;
    for (std::size_t pc = begin + 1; pc <= dev_pc; ++pc) {
      const DecodedInstr& d = code[pc];
      switch (d.cls) {
        case ExecClass::kLds:
        case ExecClass::kSts: {
          const long long replay = pc == dev_pc ? true_dyn : dyn_prev_[dyn];
          ++dyn;
          const long long start = issue_start(warp, d);
          finish(warp, d, start, d.latency + replay);
          break;
        }
        case ExecClass::kBar: {
          const long long taken = pc == dev_pc ? true_dyn : dyn_prev_[dyn];
          ++dyn;
          if (taken != 0) {
            const long long released = warp.cursor + dev_.lat.sync_barrier;
            warp.cursor = released;
            warp.last_complete = std::max(warp.last_complete, released);
          }
          break;
        }
        default: {  // kSimple, kShuffle, kScalar: baked latency
          const long long start = issue_start(warp, d);
          finish(warp, d, start, d.latency);
          break;
        }
      }
    }
    for (std::size_t pc = dev_pc + 1; pc < end; ++pc) {
      const DecodedInstr& d = code[pc];
      switch (d.cls) {
        case ExecClass::kSimple:
          if (d.vec) {
            exec_simple_vec(warp, d);
          } else if (d.vec_masked) {
            exec_simple_vec_masked(warp, d);
          } else {
            step(warp, d);
          }
          break;
        case ExecClass::kShuffle:
          if (d.vec) {
            exec_shuffle_vec(warp, d);
          } else {
            step(warp, d);
          }
          break;
        case ExecClass::kBar:
          if (bar_taken(warp, d)) {
            apply_bar(warp, d);
          }
          break;
        default:
          step(warp, d);
          break;
      }
    }
    count_issue(de);
    warp.cursor += kBranchCycles;
  }

  const std::array<VecFn, kNumLaneOps>& vt_;
  const std::array<MaskedVecFn, kNumLaneOps>& mt_;
  const DecodedProgram::AccelLoop* al_ = nullptr;
  std::vector<PlanOp> plan_;
  bool plan_built_ = false;
  std::vector<long long> sig_prev_;
  std::vector<long long> sig_cur_;
  std::vector<long long> dyn_prev_;
  std::vector<long long> dyn_cur_;
  long long head_prev_ = 0;
  long long delta_ = 0;
  long long peak_rel_ = 0;
};

}  // namespace

const char* vector_isa_name() noexcept {
  switch (active_vec_isa()) {
    case VecIsa::kAvx512: return "avx512";
    case VecIsa::kAvx2: return "avx2";
    case VecIsa::kGeneric: break;
  }
  return "generic";
}

BlockResult run_block_vector(const DecodedProgram& program, const DeviceSpec& device,
                             GlobalMemory& gmem,
                             std::span<const std::uint64_t> scalar_args,
                             const BlockRunOptions& options) {
  if (options.sdc != nullptr && options.sdc->enabled()) {
    // Injection numbers per-lane write events sequentially; the scalar
    // engine's execution order pins that numbering, so injected blocks
    // run there wholesale and parity is inherited, not re-implemented.
    return run_block_fast(program, device, gmem, scalar_args, options);
  }
  VectorEngine engine(program, device, gmem, scalar_args, options);
  return engine.run();
}

}  // namespace wsim::simt
