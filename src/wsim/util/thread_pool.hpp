#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsim::util {

/// A persistent pool of worker threads for data-parallel loops.
///
/// The pool exists to amortize thread creation across many launches: it is
/// constructed once (by an ExecutionEngine, a bench harness, ...) and then
/// reused for every parallel_for. A pool of size N uses the calling thread
/// plus N-1 workers, so size 1 degenerates to a plain inline loop with no
/// synchronization at all — the sequential baseline.
///
/// parallel_for distributes indices dynamically (atomic counter), which
/// balances skewed per-item costs such as heterogeneous alignment tasks.
/// Exceptions thrown by the body are caught and the one with the lowest
/// index is rethrown on the caller after all indices finish — the same
/// exception a sequential loop over the indices would have surfaced, so
/// error behaviour is deterministic regardless of pool size.
class ThreadPool {
 public:
  /// `threads` <= 0 requests one executor per hardware thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (caller + workers), always >= 1.
  int size() const noexcept { return size_; }

  /// Runs body(i) for every i in [0, n), blocking until all complete.
  /// The caller participates in the work. Safe to call from multiple
  /// threads; concurrent calls are serialized.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Resolves a thread-count request: values <= 0 map to
  /// hardware_concurrency (at least 1).
  static int resolve(int threads) noexcept;

 private:
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> holders{0};  ///< workers currently holding a pointer
    std::mutex mu;
    std::condition_variable finished;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };

  void worker_loop();
  static void run_job(Job& job);

  int size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  Job* job_ = nullptr;          ///< current job, null when idle
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex submit_mu_;  ///< serializes concurrent parallel_for callers
};

}  // namespace wsim::util
