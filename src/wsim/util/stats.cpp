#include "wsim/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::util {

Summary summarize(std::span<const double> values) noexcept {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  double total = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (const double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "linear_fit: xs and ys must have equal size");
  require(xs.size() >= 2, "linear_fit: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "linear_fit: need at least two distinct x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "percentile: sample must be non-empty");
  require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double relative_error(double estimate, double reference) {
  require(reference != 0.0, "relative_error: reference must be non-zero");
  return (estimate - reference) / reference;
}

}  // namespace wsim::util
