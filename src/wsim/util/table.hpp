#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wsim::util {

/// Minimal ASCII table builder used by the benchmark harnesses to print
/// rows in the same shape as the paper's tables and figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row. Requires the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, minimal quoting of commas/quotes).
  void write_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of fraction digits.
std::string format_fixed(double value, int digits);

/// Formats a double as "12.3%" style percentage with one fraction digit.
std::string format_percent(double fraction);

}  // namespace wsim::util
