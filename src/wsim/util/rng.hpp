#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wsim::util {

/// Deterministic pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Deterministic across platforms so workloads and tests are
/// reproducible; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01() noexcept;

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal deviate (Box-Muller, cached pair).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Index drawn from the (unnormalized) weight vector. Requires a
  /// non-empty span whose weights are non-negative and not all zero.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle of the given vector.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace wsim::util
