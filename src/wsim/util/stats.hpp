#pragma once

#include <cstddef>
#include <span>

namespace wsim::util {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/stddev/min/max of `values`. Empty input yields a
/// zero-initialized Summary.
Summary summarize(std::span<const double> values) noexcept;

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
};

/// Least-squares fit of y on x. Requires xs.size() == ys.size() >= 2 and
/// at least two distinct x values.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// The p-th percentile (p in [0,100]) using linear interpolation between
/// order statistics. Requires a non-empty sample.
double percentile(std::span<const double> values, double p);

/// Relative error (estimate - reference) / reference. Requires a non-zero
/// reference.
double relative_error(double estimate, double reference);

}  // namespace wsim::util
