#include "wsim/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "wsim/util/check.hpp"

namespace wsim::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "Table: row width must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
  };
  const auto print_rule = [&] {
    os << "+";
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void Table::write_csv(std::ostream& os) const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') {
        out += '"';
      }
      out += ch;
    }
    out += '"';
    return out;
  };
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

std::string format_fixed(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

std::string format_percent(double fraction) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(1) << fraction * 100.0 << '%';
  return oss.str();
}

}  // namespace wsim::util
