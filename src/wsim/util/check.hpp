#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace wsim::util {

/// Thrown when a precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition check: throws CheckError with the failing location when
/// `condition` is false. Used at public API boundaries (Expects-style).
inline void require(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": requirement failed: " + what);
  }
}

/// String-literal overload: overload resolution prefers this exact match
/// over the std::string conversion, so hot-path checks with literal
/// messages build no std::string on the success path.
inline void require(bool condition, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": requirement failed: " + what);
  }
}

/// Internal invariant check: same behaviour as require(), separate name so
/// call sites document whether a failure blames the caller or the library.
inline void ensure(bool condition, const std::string& what,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": invariant violated: " + what);
  }
}

/// String-literal overload of ensure(); see the require() counterpart.
inline void ensure(bool condition, const char* what,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": invariant violated: " + what);
  }
}

}  // namespace wsim::util
