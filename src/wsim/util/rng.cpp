#include "wsim/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "wsim/util/check.hpp"

namespace wsim::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int: lo must not exceed hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  require(lo <= hi, "uniform_real: lo must not exceed hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) {
    u1 = uniform01();
  }
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::size_t Rng::categorical(std::span<const double> weights) {
  require(!weights.empty(), "categorical: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "categorical: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "categorical: weights must not all be zero");
  double draw = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numerical edge: total rounding
}

}  // namespace wsim::util
