#include "wsim/util/thread_pool.hpp"

#include <algorithm>

namespace wsim::util {

int ThreadPool::resolve(int threads) noexcept {
  if (threads > 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) : size_(resolve(threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int w = 1; w < size_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) {
      break;
    }
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (job.error == nullptr || i < job.error_index) {
        job.error = std::current_exception();
        job.error_index = i;
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.finished.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      job = job_;
      if (job != nullptr) {
        // Counted under mu_ so the submitter's job_ = nullptr (also under
        // mu_) can never race with a worker acquiring the pointer: either
        // the worker is already counted in `holders`, or it sees null.
        job->holders.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (job != nullptr) {
      run_job(*job);
      if (job->holders.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(job->mu);
        job->finished.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (size_ == 1 || n == 1) {
    // Inline fast path: no pool traffic, identical results by construction.
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Job job;
  job.body = &body;
  job.count = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();
  run_job(job);
  // Every index has been claimed (the caller's loop only exits once `next`
  // passed `count`), so late-waking workers have nothing to do; hide the
  // job from them and wait for completion plus pointer release.
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> lock(job.mu);
    job.finished.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.count &&
             job.holders.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.error != nullptr) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace wsim::util
