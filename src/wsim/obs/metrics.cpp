#include "wsim/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <ostream>
#include <vector>

#include "wsim/obs/json.hpp"

namespace wsim::obs {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

template <typename T>
std::vector<T*> sorted_by_name(const std::vector<T*>& instruments) {
  std::vector<T*> out = instruments;
  std::sort(out.begin(), out.end(),
            [](const T* x, const T* y) { return x->name() < y->name(); });
  return out;
}

}  // namespace

Counter::Counter(std::string name) : name_(std::move(name)) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters.push_back(this);
}

Gauge::Gauge(std::string name) : name_(std::move(name)) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gauges.push_back(this);
}

Histogram::Histogram(std::string name) : name_(std::move(name)) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.histograms.push_back(this);
}

void Histogram::observe(double value) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  int exp = 0;
  if (value > 0.0 && std::isfinite(value)) {
    std::frexp(value, &exp);
  }
  const long idx =
      std::clamp(static_cast<long>(exp) + 32L, 0L,
                 static_cast<long>(kBuckets) - 1L);
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1,
                                                    std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

void write_metrics_json(std::ostream& os) {
  Registry& r = registry();
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    counters = sorted_by_name(r.counters);
    gauges = sorted_by_name(r.gauges);
    histograms = sorted_by_name(r.histograms);
  }
  os << "{\n";
  os << "  \"schema_version\": " << kStatsSchemaVersion << ",\n";
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << json_quote(counters[i]->name()) << ": " << counters[i]->value();
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(gauges[i]->name())
       << ": " << json_number(gauges[i]->value());
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram& h = *histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(h.name()) << ": {"
       << "\"count\": " << h.count() << ", \"sum\": " << json_number(h.sum())
       << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) {
        continue;
      }
      os << (first ? "" : ", ") << '[' << b << ", " << h.bucket(b) << ']';
      first = false;
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n";
  os << "}\n";
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (Counter* counter : r.counters) {
    counter->reset();
  }
  for (Gauge* gauge : r.gauges) {
    gauge->reset();
  }
  for (Histogram* histogram : r.histograms) {
    histogram->reset();
  }
}

}  // namespace wsim::obs
