#pragma once

// Shared JSON primitives for every stats/metrics/trace writer in the
// tree. One implementation of number formatting (non-finite values map
// to 0 so a NaN latency can never corrupt a report) and string escaping,
// plus the version stamp of the shared stats-record schema emitted by
// serve::write_stats_json / cluster::write_cluster_json and the obs
// metrics exporter.

#include <string>

namespace wsim::obs {

/// Version of the shared stats/metrics JSON record schema. Version 1 was
/// the unversioned schema PRs 3-6 emitted; version 2 added this field.
inline constexpr int kStatsSchemaVersion = 2;

/// Default-ostream formatting; non-finite values render as "0".
std::string json_number(double value);

/// `value` quoted and escaped (backslash and double quote).
std::string json_quote(const std::string& value);

}  // namespace wsim::obs
