#pragma once

// Metrics registry: named counters, gauges, and log2-bucketed histograms
// that register themselves into a process-wide registry at construction
// (intended use: function-local statics at each instrumentation site).
// Updates are relaxed atomics guarded by metrics_enabled(), so a
// disabled registry costs one load and a predictable branch per site.
// write_metrics_json emits every instrument sorted by name under the
// shared versioned stats schema.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "wsim/obs/obs.hpp"

namespace wsim::obs {

class Counter {
 public:
  explicit Counter(std::string name);

  void add(std::uint64_t delta = 1) noexcept {
    if (metrics_enabled()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name);

  void set(double value) noexcept {
    if (metrics_enabled()) {
      value_.store(value, std::memory_order_relaxed);
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Histogram over positive values with log2 buckets: bucket i counts
/// observations in [2^(i-32), 2^(i-31)) — covering ~2.3e-10 through ~4e9,
/// wide enough for both seconds-scale latencies and cell counts.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  explicit Histogram(std::string name);

  void observe(double value) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept;

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Flat JSON dump of every registered instrument, sorted by name, under
/// {"schema_version": ..., "counters": {...}, "gauges": {...},
///  "histograms": {name: {count, sum, buckets: [[index, count], ...]}}}.
void write_metrics_json(std::ostream& os);

/// Zeroes every registered instrument (registration is permanent).
void reset_metrics();

}  // namespace wsim::obs
