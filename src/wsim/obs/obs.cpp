#include "wsim/obs/obs.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <sstream>

#include "wsim/obs/json.hpp"
#include "wsim/obs/metrics.hpp"

namespace wsim::obs {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::kOff)};
}  // namespace detail

namespace {

/// Per-shard ring capacity. Events are ~64 bytes, so a full shard holds
/// the last ~64k events in ~4 MB; older events are overwritten and
/// counted in `dropped_`.
constexpr std::size_t kShardCapacity = 1U << 16U;

/// How many trailing events a flight dump snapshots, and how many dumps
/// the recorder retains.
constexpr std::size_t kFlightWindow = 96;
constexpr std::size_t kFlightDumps = 16;

struct Shard {
  mutable std::mutex mu;
  std::vector<Event> ring;      ///< grows to kShardCapacity, then wraps
  std::uint64_t count = 0;      ///< total events ever pushed
};

struct Collector {
  std::mutex registry_mu;
  std::vector<std::shared_ptr<Shard>> shards;  ///< never shrinks
  std::atomic<std::uint64_t> seq{0};
  std::atomic<double> sim_time{0.0};
  std::mutex flight_mu;
  std::vector<FlightDump> dumps;
};

Collector& collector() {
  static Collector instance;
  return instance;
}

/// The emitting thread's shard. Registered once per thread; the shard is
/// owned by the collector so it outlives the thread (drains and resets
/// stay valid after workers exit).
Shard& local_shard() {
  thread_local Shard* shard = [] {
    auto owned = std::make_shared<Shard>();
    owned->ring.reserve(1024);
    Shard* raw = owned.get();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.registry_mu);
    c.shards.push_back(std::move(owned));
    return raw;
  }();
  return *shard;
}

void push(Event event) {
  event.seq = collector().seq.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < kShardCapacity) {
    shard.ring.push_back(event);
  } else {
    shard.ring[shard.count % kShardCapacity] = event;
  }
  ++shard.count;
}

std::vector<Event> collect_locked() {
  Collector& c = collector();
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(c.registry_mu);
    shards = c.shards;
  }
  std::vector<Event> events;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    events.insert(events.end(), shard->ring.begin(), shard->ring.end());
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return events;
}

}  // namespace

const char* to_string(Layer layer) noexcept {
  switch (layer) {
    case Layer::kEngine: return "engine";
    case Layer::kServe: return "serve";
    case Layer::kFleet: return "fleet";
    case Layer::kGuard: return "guard";
    case Layer::kCluster: return "cluster";
    case Layer::kWorkload: return "workload";
  }
  return "?";
}

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kSpanBegin: return "B";
    case Kind::kSpanEnd: return "E";
    case Kind::kInstant: return "I";
    case Kind::kCounter: return "C";
  }
  return "?";
}

Level level() noexcept {
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

void set_level(Level level) noexcept {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_sim_time(double t) noexcept {
  collector().sim_time.store(t, std::memory_order_relaxed);
}

double sim_time() noexcept {
  return collector().sim_time.load(std::memory_order_relaxed);
}

namespace {

void emit(double ts, Layer layer, Kind kind, const char* name,
          std::int32_t device, std::uint64_t id, double a0, double a1) {
  Event event;
  event.ts = ts;
  event.layer = layer;
  event.kind = kind;
  event.device = device;
  event.id = id;
  event.name = name;
  event.a0 = a0;
  event.a1 = a1;
  push(event);
}

}  // namespace

void span_begin(double ts, Layer layer, const char* name, std::int32_t device,
                std::uint64_t id, double a0, double a1) {
  if (!tracing_enabled()) {
    return;
  }
  emit(ts, layer, Kind::kSpanBegin, name, device, id, a0, a1);
}

void span_end(double ts, Layer layer, const char* name, std::int32_t device,
              std::uint64_t id, double a0, double a1) {
  if (!tracing_enabled()) {
    return;
  }
  emit(ts, layer, Kind::kSpanEnd, name, device, id, a0, a1);
}

void instant(double ts, Layer layer, const char* name, std::int32_t device,
             std::uint64_t id, double a0, double a1) {
  if (!tracing_enabled()) {
    return;
  }
  emit(ts, layer, Kind::kInstant, name, device, id, a0, a1);
}

void counter(double ts, Layer layer, const char* name, double value,
             std::int32_t device) {
  if (!tracing_enabled()) {
    return;
  }
  emit(ts, layer, Kind::kCounter, name, device, 0, value, 0.0);
}

Span::Span(Layer layer, const char* name, std::int32_t device,
           std::uint64_t id)
    : layer_(layer), name_(name), device_(device), id_(id),
      active_(tracing_enabled()) {
  if (active_) {
    emit(sim_time(), layer_, Kind::kSpanBegin, name_, device_, id_, 0.0, 0.0);
  }
}

Span::~Span() {
  if (active_) {
    emit(sim_time(), layer_, Kind::kSpanEnd, name_, device_, id_, 0.0, 0.0);
  }
}

std::vector<Event> collect() { return collect_locked(); }

std::uint64_t dropped() {
  Collector& c = collector();
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(c.registry_mu);
    shards = c.shards;
  }
  std::uint64_t total = 0;
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->count > shard->ring.size()) {
      total += shard->count - shard->ring.size();
    }
  }
  return total;
}

std::string format_events(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& e : events) {
    os << e.seq << ' ' << json_number(e.ts) << ' ' << to_string(e.layer) << ' '
       << to_string(e.kind) << ' ' << e.name << " device=" << e.device
       << " tenant=" << e.tenant << " id=" << e.id
       << " a0=" << json_number(e.a0) << " a1=" << json_number(e.a1) << '\n';
  }
  return os.str();
}

void dump_flight(const std::string& reason, std::int32_t device,
                 std::uint64_t id, double ts) {
  FlightDump dump;
  dump.reason = reason;
  dump.device = device;
  dump.id = id;
  dump.ts = ts;
  std::vector<Event> events = collect_locked();
  if (events.size() > kFlightWindow) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(kFlightWindow));
  }
  dump.events = std::move(events);
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.flight_mu);
  if (c.dumps.size() >= kFlightDumps) {
    c.dumps.erase(c.dumps.begin());
  }
  c.dumps.push_back(std::move(dump));
}

std::vector<FlightDump> flight_dumps() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.flight_mu);
  return c.dumps;
}

std::string format_flight(const FlightDump& dump) {
  std::ostringstream os;
  os << "flight recorder dump: " << dump.reason << '\n'
     << "  failing device=" << dump.device << " id=" << dump.id
     << " t=" << json_number(dump.ts) << "s\n"
     << "  last " << dump.events.size() << " event(s):\n";
  std::istringstream lines(format_events(dump.events));
  std::string line;
  while (std::getline(lines, line)) {
    os << "    " << line << '\n';
  }
  return os.str();
}

void reset() {
  Collector& c = collector();
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(c.registry_mu);
    shards = c.shards;
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->ring.clear();
    shard->count = 0;
  }
  {
    std::lock_guard<std::mutex> lock(c.flight_mu);
    c.dumps.clear();
  }
  c.seq.store(0, std::memory_order_relaxed);
  c.sim_time.store(0.0, std::memory_order_relaxed);
  reset_metrics();
}

}  // namespace wsim::obs
