#include "wsim/obs/json.hpp"

#include <cmath>
#include <sstream>

namespace wsim::obs {

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string json_quote(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace wsim::obs
