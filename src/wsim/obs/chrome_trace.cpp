#include "wsim/obs/chrome_trace.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <string>

#include "wsim/obs/json.hpp"

namespace wsim::obs {

namespace {

constexpr std::uint32_t kDeviceTidBase = 100;

std::uint32_t layer_tid(Layer layer) noexcept {
  switch (layer) {
    case Layer::kEngine: return 1;
    case Layer::kServe: return 2;
    case Layer::kFleet: return 3;
    case Layer::kGuard: return 4;
    case Layer::kCluster: return 5;
    case Layer::kWorkload: return 6;
  }
  return 0;
}

void write_args(std::ostream& os, const Event& e) {
  os << "\"args\":{\"id\":" << e.id << ",\"a0\":" << json_number(e.a0)
     << ",\"a1\":" << json_number(e.a1);
  if (e.tenant >= 0) {
    os << ",\"tenant\":" << e.tenant;
  }
  os << "}";
}

}  // namespace

std::uint32_t chrome_tid(const Event& event) noexcept {
  if (event.device >= 0) {
    return kDeviceTidBase + static_cast<std::uint32_t>(event.device);
  }
  return layer_tid(event.layer);
}

std::string chrome_track_name(std::uint32_t tid) {
  if (tid >= kDeviceTidBase) {
    return "device-" + std::to_string(tid - kDeviceTidBase);
  }
  switch (tid) {
    case 1: return "engine";
    case 2: return "serve";
    case 3: return "fleet";
    case 4: return "guard";
    case 5: return "autoscaler";
    case 6: return "workload";
  }
  return "track-" + std::to_string(tid);
}

std::vector<Event> chrome_sorted(std::vector<Event> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& x, const Event& y) {
                     const std::uint32_t tx = chrome_tid(x);
                     const std::uint32_t ty = chrome_tid(y);
                     if (tx != ty) {
                       return tx < ty;
                     }
                     if (x.ts != y.ts) {
                       return x.ts < y.ts;
                     }
                     return x.seq < y.seq;
                   });
  return events;
}

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events) {
  const std::vector<Event> sorted = chrome_sorted(events);
  std::set<std::uint32_t> tids;
  for (const Event& e : sorted) {
    tids.insert(chrome_tid(e));
  }
  os << "[\n";
  bool first = true;
  for (const std::uint32_t tid : tids) {
    os << (first ? "" : ",\n")
       << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":"
       << json_quote(chrome_track_name(tid)) << "}}";
    first = false;
  }
  for (const Event& e : sorted) {
    const double us = e.ts * 1e6;
    os << (first ? "" : ",\n") << "{\"ph\":\"";
    first = false;
    switch (e.kind) {
      case Kind::kSpanBegin:
      case Kind::kSpanEnd:
        os << (e.kind == Kind::kSpanBegin ? 'B' : 'E')
           << "\",\"pid\":1,\"tid\":" << chrome_tid(e)
           << ",\"ts\":" << json_number(us) << ",\"name\":" << json_quote(e.name)
           << ",\"cat\":" << json_quote(to_string(e.layer)) << ",";
        write_args(os, e);
        os << "}";
        break;
      case Kind::kInstant:
        os << "i\",\"s\":\"t\",\"pid\":1,\"tid\":" << chrome_tid(e)
           << ",\"ts\":" << json_number(us) << ",\"name\":" << json_quote(e.name)
           << ",\"cat\":" << json_quote(to_string(e.layer)) << ",";
        write_args(os, e);
        os << "}";
        break;
      case Kind::kCounter:
        os << "C\",\"pid\":1,\"tid\":" << chrome_tid(e)
           << ",\"ts\":" << json_number(us) << ",\"name\":" << json_quote(e.name)
           << ",\"args\":{\"value\":" << json_number(e.a0) << "}}";
        break;
    }
  }
  os << "\n]\n";
}

void write_chrome_trace(std::ostream& os) { write_chrome_trace(os, collect()); }

}  // namespace wsim::obs
