#pragma once

// Chrome trace-event exporter: renders the collected event stream as a
// trace-event JSON array loadable in Perfetto / chrome://tracing, one
// track (tid) per device worker plus one per layer (serve queue,
// fleet control, guard, autoscaler, workload).

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "wsim/obs/obs.hpp"

namespace wsim::obs {

/// The Chrome track an event renders on: devices get their own tracks
/// (100 + device id), everything else lands on its layer's track.
std::uint32_t chrome_tid(const Event& event) noexcept;

/// Display name of a track id ("device-3", "serve", "autoscaler", ...).
std::string chrome_track_name(std::uint32_t tid);

/// `events` re-sorted for export: by (track, ts, seq), stable — so each
/// track's timestamps are non-decreasing by construction.
std::vector<Event> chrome_sorted(std::vector<Event> events);

/// Writes `events` as a Chrome trace-event JSON array (timestamps are
/// simulated seconds scaled to microseconds).
void write_chrome_trace(std::ostream& os, const std::vector<Event>& events);

/// Convenience: collect() + write_chrome_trace.
void write_chrome_trace(std::ostream& os);

}  // namespace wsim::obs
