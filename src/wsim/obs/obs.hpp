#pragma once

// Cross-layer observability: a deterministic span/event collector and a
// crash flight recorder shared by every layer of the stack (engine, serve,
// fleet, guard, cluster).
//
// Events carry simulated timestamps — the same deterministic clock the
// serving and cluster layers run on — plus a global emission sequence
// number, so a replayed run produces a byte-identical event stream and
// trace determinism is an extension of the existing replay-determinism
// contract. Collection is sharded per emitting thread (lock-free in the
// common single-driver case; each shard is a bounded ring that overwrites
// its oldest events under pressure and counts the drops).
//
// The default level is kOff: every instrumentation site costs one relaxed
// atomic load and a predictable branch, nothing else. kMetrics arms the
// counters/gauges/histograms in metrics.hpp; kTrace additionally records
// events for the Chrome-trace exporter and the flight recorder.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wsim::obs {

/// Collection level, ordered: each level includes the previous one.
enum class Level : int { kOff = 0, kMetrics = 1, kTrace = 2 };

/// Which layer of the stack emitted an event (also the fallback track in
/// the Chrome exporter when the event names no device).
enum class Layer : std::uint8_t {
  kEngine,
  kServe,
  kFleet,
  kGuard,
  kCluster,
  kWorkload,
};

enum class Kind : std::uint8_t { kSpanBegin, kSpanEnd, kInstant, kCounter };

const char* to_string(Layer layer) noexcept;
const char* to_string(Kind kind) noexcept;

/// One structured event. `name` must be a string literal (events are
/// copied around by value and never own memory).
struct Event {
  std::uint64_t seq = 0;  ///< global emission order — the determinism key
  double ts = 0.0;        ///< simulated seconds
  Layer layer = Layer::kEngine;
  Kind kind = Kind::kInstant;
  std::int32_t device = -1;  ///< fleet DeviceId / serve device, -1 = none
  std::int32_t tenant = -1;  ///< serve tenant index, -1 = none
  std::uint64_t id = 0;      ///< launch / batch / dispatch sequence number
  const char* name = "";     ///< static event name, e.g. "fleet.batch"
  double a0 = 0.0;           ///< payload (tasks, cells, seconds, value, ...)
  double a1 = 0.0;
};

namespace detail {
extern std::atomic<int> g_level;
}  // namespace detail

/// Hot-path guards: one relaxed load, branch-predictable when off.
inline bool tracing_enabled() noexcept {
  return detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(Level::kTrace);
}
inline bool metrics_enabled() noexcept {
  return detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(Level::kMetrics);
}

Level level() noexcept;
void set_level(Level level) noexcept;

/// The simulated clock, published by whichever driver owns it (serve's
/// event loop, cluster's control loop). Layers without a simulated
/// duration of their own (the engine) stamp events with it.
void set_sim_time(double t) noexcept;
double sim_time() noexcept;

// --- emission ---------------------------------------------------------------
// All emitters take the event timestamp explicitly: call sites hold the
// simulated times their events describe (batch start/completion, tick
// time, the service clock). Every emitter is a no-op below kTrace.

void span_begin(double ts, Layer layer, const char* name,
                std::int32_t device = -1, std::uint64_t id = 0, double a0 = 0.0,
                double a1 = 0.0);
void span_end(double ts, Layer layer, const char* name,
              std::int32_t device = -1, std::uint64_t id = 0, double a0 = 0.0,
              double a1 = 0.0);
void instant(double ts, Layer layer, const char* name, std::int32_t device = -1,
             std::uint64_t id = 0, double a0 = 0.0, double a1 = 0.0);
void counter(double ts, Layer layer, const char* name, double value,
             std::int32_t device = -1);

/// RAII span scope on the published simulated clock: begin at
/// construction, end at destruction (both read sim_time(), so a scope
/// that does not advance the clock records a zero-duration span).
class Span {
 public:
  Span(Layer layer, const char* name, std::int32_t device = -1,
       std::uint64_t id = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Layer layer_;
  const char* name_;
  std::int32_t device_;
  std::uint64_t id_;
  bool active_;
};

// --- collection -------------------------------------------------------------

/// Snapshot of every recorded event in emission (seq) order. Does not
/// clear the buffers; reset() does.
std::vector<Event> collect();

/// Events overwritten by ring-buffer pressure since the last reset().
std::uint64_t dropped();

/// One line per event — the canonical serialization the determinism test
/// compares byte-for-byte across replays.
std::string format_events(const std::vector<Event>& events);

// --- flight recorder --------------------------------------------------------
// A bounded last-N-events snapshot captured at the moment something went
// wrong, so the post-mortem carries the exact event sequence that led up
// to the failure. Dumps are captured at every level (below kTrace the
// event window is empty, but the dump still names the failing site).

struct FlightDump {
  std::string reason;        ///< what triggered the dump (incl. error text)
  std::int32_t device = -1;  ///< the failing device, -1 when unknown
  std::uint64_t id = 0;      ///< the failing launch/batch/dispatch id
  double ts = 0.0;           ///< simulated time of the trigger
  std::vector<Event> events; ///< the final events before the trigger
};

/// Captures a dump. Cheap when nothing was recorded; bounded history (the
/// oldest dumps fall off).
void dump_flight(const std::string& reason, std::int32_t device,
                 std::uint64_t id, double ts);

/// Snapshot of the captured dumps, oldest first.
std::vector<FlightDump> flight_dumps();

/// Human-readable rendering of one dump (reason, failing site, events).
std::string format_flight(const FlightDump& dump);

/// Clears events, drops, flight dumps, metric values, and the published
/// sim clock. The collection level is left untouched. Not thread-safe
/// against concurrent emitters — call between runs, not during one.
void reset();

}  // namespace wsim::obs
