#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "wsim/simt/device.hpp"
#include "wsim/simt/isa.hpp"

namespace wsim::micro {

/// The paper's Listing-1 microbenchmark kernels: a register-only
/// dependence chain, one chain per shuffle variant, a single-thread
/// shared-memory pointer chase, and the same chase with a __syncthreads
/// per iteration.
enum class MicroKernel {
  kRegister,
  kShfl,
  kShflUp,
  kShflDown,
  kShflXor,
  kSharedMem,
  kSharedMemSync,
};

std::string_view to_string(MicroKernel which) noexcept;

/// Builds one microbenchmark kernel. The iteration count is the kernel's
/// second scalar parameter so one build serves the whole sweep.
/// Parameters: s0 = in/out buffer, s1 = ITERATIONS, s2 = chase-table base
/// (pointer-chase kernels only).
simt::Kernel build_micro_kernel(MicroKernel which);

/// Runs one microbenchmark launch (a single 32-thread block, as in the
/// paper, to avoid warp-scheduling noise) and returns the block cycles.
long long run_micro(const simt::Kernel& kernel, const simt::DeviceSpec& device,
                    int iterations);

/// Linear-regression latency extraction (paper Eqs. 1-4): cycles are
/// measured at each iteration count, the slope k = latency + alpha is
/// fitted, and the instruction latency is derived relative to the
/// register kernel's slope.
struct LatencyEstimate {
  double slope = 0.0;      ///< cycles per iteration
  double intercept = 0.0;  ///< beta: fixed overheads outside the loop
  double latency = 0.0;    ///< derived instruction latency in cycles
  double r_squared = 0.0;
};

struct MicroResults {
  LatencyEstimate reg;
  LatencyEstimate shfl;
  LatencyEstimate shfl_up;
  LatencyEstimate shfl_down;
  LatencyEstimate shfl_xor;
  LatencyEstimate sharedmem;
  LatencyEstimate sync;
};

/// Default ITERATIONS sweep (ten runs, as in the paper).
std::vector<int> default_iteration_sweep();

/// Runs the full suite on one device and derives all latencies.
MicroResults measure_latencies(const simt::DeviceSpec& device,
                               std::span<const int> iteration_counts);

MicroResults measure_latencies(const simt::DeviceSpec& device);

}  // namespace wsim::micro
