#include "wsim/micro/microbench.hpp"

#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/stats.hpp"

namespace wsim::micro {

using simt::Cmp;
using simt::DType;
using simt::imm_f32;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::Op;
using simt::SReg;
using simt::VReg;

std::string_view to_string(MicroKernel which) noexcept {
  switch (which) {
    case MicroKernel::kRegister:
      return "reg";
    case MicroKernel::kShfl:
      return "shfl";
    case MicroKernel::kShflUp:
      return "shfl_up";
    case MicroKernel::kShflDown:
      return "shfl_down";
    case MicroKernel::kShflXor:
      return "shfl_xor";
    case MicroKernel::kSharedMem:
      return "sharedmem";
    case MicroKernel::kSharedMemSync:
      return "sharedmem_sync";
  }
  return "unknown";
}

namespace {

/// Listing 1, kernels reg() and shuffle(): a loop-carried f32 multiply
/// chain, with a shuffle inserted into the chain for the shuffle
/// variants.
simt::Kernel build_chain_kernel(MicroKernel which) {
  KernelBuilder kb(std::string(to_string(which)), 32);
  const SReg buf = kb.param();
  const SReg iterations = kb.param();
  const VReg tid = kb.tid();
  const VReg addr = kb.iadd(buf, kb.imul(tid, imm_i64(4)));
  const VReg a = kb.ldg(addr);

  // shfl uses "randomly generated lane IDs" (paper): a per-lane source
  // computed once outside the loop.
  const VReg src_lane = kb.iand(kb.iadd(kb.imul(tid, imm_i64(7)), imm_i64(3)),
                                imm_i64(31));

  kb.loop(iterations);
  switch (which) {
    case MicroKernel::kRegister:
      kb.assign(a, kb.fmul(a, a));
      break;
    case MicroKernel::kShfl:
      kb.assign(a, kb.fmul(a, kb.shfl(a, src_lane)));
      break;
    case MicroKernel::kShflUp:
      kb.assign(a, kb.fmul(a, kb.shfl_up(a, imm_i64(1))));
      break;
    case MicroKernel::kShflDown:
      kb.assign(a, kb.fmul(a, kb.shfl_down(a, imm_i64(1))));
      break;
    case MicroKernel::kShflXor:
      kb.assign(a, kb.fmul(a, kb.shfl_xor(a, imm_i64(1))));
      break;
    default:
      throw util::CheckError("build_chain_kernel: not a chain kernel");
  }
  kb.endloop();
  kb.stg(addr, a);
  return kb.build();
}

/// Listing 1, kernels sharedmem() and sharedmemsync(): a single active
/// thread chases precomputed byte offsets through a shared-memory table,
/// so each iteration's load address depends on the previous load.
simt::Kernel build_chase_kernel(bool with_sync) {
  KernelBuilder kb(with_sync ? "sharedmem_sync" : "sharedmem", 32);
  const SReg buf = kb.param();
  const SReg iterations = kb.param();
  const SReg table = kb.param();
  const int smem = kb.alloc_smem(32 * 4);
  const VReg tid = kb.tid();

  // All 32 lanes cooperatively copy the chase table into shared memory
  // (the "buf[i] = in[i]" loop of Listing 1).
  const VReg slot = kb.imul(tid, imm_i64(4));
  kb.sts(kb.iadd(imm_i64(smem), slot), kb.ldg(kb.iadd(table, slot)));
  kb.bar();

  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg ind = kb.mov(imm_i64(0));
  const VReg a = kb.mov(imm_f32(1.0F));
  kb.loop(iterations);
  {
    // ind = buf[ind]; the table stores byte offsets so the loop-carried
    // chain is exactly one add plus one shared-memory load.
    kb.begin_pred(is_t0);
    kb.lds_to(ind, kb.iadd(imm_i64(smem), ind));
    kb.end_pred();
    kb.assign(a, kb.fmul(a, a));  // off-chain work, as in Listing 1
    if (with_sync) {
      kb.bar();
    }
  }
  kb.endloop();
  kb.begin_pred(is_t0);
  kb.stg(buf, a);
  kb.stg(buf, ind, 4);
  kb.end_pred();
  return kb.build();
}

}  // namespace

simt::Kernel build_micro_kernel(MicroKernel which) {
  switch (which) {
    case MicroKernel::kSharedMem:
      return build_chase_kernel(false);
    case MicroKernel::kSharedMemSync:
      return build_chase_kernel(true);
    default:
      return build_chain_kernel(which);
  }
}

long long run_micro(const simt::Kernel& kernel, const simt::DeviceSpec& device,
                    int iterations) {
  util::require(iterations > 0, "run_micro: iterations must be positive");
  simt::GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<float> init(32, 1.0F);
  gmem.write_f32(buf, init);

  // Chase table: a full-cycle permutation stored as byte offsets.
  const auto table = gmem.alloc(32 * 4);
  std::vector<std::int32_t> chase(32);
  for (int i = 0; i < 32; ++i) {
    chase[static_cast<std::size_t>(i)] = ((i * 5 + 7) % 32) * 4;
  }
  gmem.write_i32(table, chase);

  std::vector<simt::BlockLaunch> blocks(1);
  blocks[0].args = {
      static_cast<std::uint64_t>(buf),
      static_cast<std::uint64_t>(iterations),
      static_cast<std::uint64_t>(table),
  };
  return simt::launch(kernel, device, gmem, blocks).representative.cycles;
}

std::vector<int> default_iteration_sweep() {
  return {64, 128, 192, 256, 384, 512, 640, 768, 896, 1024};
}

namespace {

LatencyEstimate fit_kernel(const simt::Kernel& kernel, const simt::DeviceSpec& device,
                           std::span<const int> iteration_counts) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(iteration_counts.size());
  ys.reserve(iteration_counts.size());
  for (const int iters : iteration_counts) {
    xs.push_back(static_cast<double>(iters));
    ys.push_back(static_cast<double>(run_micro(kernel, device, iters)));
  }
  const util::LinearFit fit = util::linear_fit(xs, ys);
  LatencyEstimate est;
  est.slope = fit.slope;
  est.intercept = fit.intercept;
  est.r_squared = fit.r_squared;
  return est;
}

}  // namespace

MicroResults measure_latencies(const simt::DeviceSpec& device,
                               std::span<const int> iteration_counts) {
  util::require(iteration_counts.size() >= 2,
                "measure_latencies: need at least two iteration counts");
  MicroResults results;
  results.reg = fit_kernel(build_micro_kernel(MicroKernel::kRegister), device,
                           iteration_counts);
  results.shfl = fit_kernel(build_micro_kernel(MicroKernel::kShfl), device,
                            iteration_counts);
  results.shfl_up = fit_kernel(build_micro_kernel(MicroKernel::kShflUp), device,
                               iteration_counts);
  results.shfl_down = fit_kernel(build_micro_kernel(MicroKernel::kShflDown), device,
                                 iteration_counts);
  results.shfl_xor = fit_kernel(build_micro_kernel(MicroKernel::kShflXor), device,
                                iteration_counts);
  results.sharedmem = fit_kernel(build_micro_kernel(MicroKernel::kSharedMem), device,
                                 iteration_counts);
  results.sync = fit_kernel(build_micro_kernel(MicroKernel::kSharedMemSync), device,
                            iteration_counts);

  // Paper Eqs. 1-4: latency_reg = 1 by convention; other latencies derive
  // from slope differences against the register kernel.
  const double k_reg = results.reg.slope;
  const double reg_latency = device.lat.reg_access;
  results.reg.latency = reg_latency;
  results.shfl.latency = reg_latency + results.shfl.slope - k_reg;
  results.shfl_up.latency = reg_latency + results.shfl_up.slope - k_reg;
  results.shfl_down.latency = reg_latency + results.shfl_down.slope - k_reg;
  results.shfl_xor.latency = reg_latency + results.shfl_xor.slope - k_reg;
  results.sharedmem.latency = reg_latency + results.sharedmem.slope - k_reg;
  results.sync.latency =
      reg_latency + results.sync.slope - k_reg - results.sharedmem.latency;
  return results;
}

MicroResults measure_latencies(const simt::DeviceSpec& device) {
  const auto sweep = default_iteration_sweep();
  return measure_latencies(device, sweep);
}

}  // namespace wsim::micro
