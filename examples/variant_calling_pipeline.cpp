// A miniature HaplotypeCaller-style pipeline over a synthetic genome
// sample: per active region, candidate haplotypes are aligned to the
// reference window with the SW kernel (stage 1) and every read is scored
// against every haplotype with the PairHMM kernel (stage 2) — the two
// GPU-offloaded stages the paper extracts from GATK. Both stages run the
// shuffle designs and report throughput.

#include <algorithm>
#include <iostream>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/pipeline/pipeline.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

int main() {
  using wsim::kernels::CommMode;
  using wsim::util::format_fixed;

  const auto device = wsim::simt::make_titan_x();
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = 1234;
  cfg.regions = 6;
  cfg.ph_tasks_per_region_mean = 24.0;  // keep the demo interactive
  const auto dataset = wsim::workload::generate_dataset(cfg);

  const wsim::kernels::SwRunner sw(CommMode::kShuffle);
  const wsim::kernels::PhRunner ph(CommMode::kShuffle);

  double sw_seconds = 0.0;
  double ph_seconds = 0.0;
  std::size_t sw_cells = 0;
  std::size_t ph_cells = 0;

  wsim::util::Table table({"region", "haplotypes", "best SW score", "best CIGAR",
                           "reads", "best read log10"});
  for (std::size_t r = 0; r < dataset.regions.size(); ++r) {
    const auto& region = dataset.regions[r];

    // Stage 1: align candidate haplotypes against the reference window.
    wsim::kernels::SwRunOptions sw_opt;
    sw_opt.collect_outputs = true;
    const auto sw_result = sw.run_batch(device, region.sw_tasks, sw_opt);
    sw_seconds += sw_result.run.launch.total_seconds();
    sw_cells += sw_result.run.cells;
    const auto best_hap = std::max_element(
        sw_result.outputs.begin(), sw_result.outputs.end(),
        [](const auto& x, const auto& y) { return x.best_score < y.best_score; });

    // Stage 2: score reads against haplotypes.
    wsim::kernels::PhRunOptions ph_opt;
    ph_opt.collect_outputs = true;
    const auto ph_result = ph.run_batch(device, region.ph_tasks, ph_opt);
    ph_seconds += ph_result.run.launch.total_seconds();
    ph_cells += ph_result.run.cells;
    const double best_log10 =
        *std::max_element(ph_result.log10.begin(), ph_result.log10.end());

    table.add_row({std::to_string(r), std::to_string(region.sw_tasks.size()),
                   std::to_string(best_hap->best_score), best_hap->alignment.cigar,
                   std::to_string(region.ph_tasks.size()),
                   format_fixed(best_log10, 2)});
  }
  table.print(std::cout);

  std::cout << "\nThroughput on the simulated " << device.name << " (shuffle designs):\n"
            << "  Smith-Waterman: " << format_fixed(static_cast<double>(sw_cells) /
                                                    sw_seconds / 1e9, 2)
            << " GCUPS over " << sw_cells << " cells\n"
            << "  PairHMM:        " << format_fixed(static_cast<double>(ph_cells) /
                                                    ph_seconds / 1e9, 2)
            << " GCUPS over " << ph_cells << " cells\n"
            << "\nSmall per-region batches leave the GPU underutilized — the\n"
            << "effect the paper's Fig. 10 fixes by re-batching across regions.\n";

  // The same flow through the library's pipeline orchestrator, with the
  // optimizations turned on and a built-in sample validator.
  wsim::pipeline::PipelineConfig pipeline_cfg;
  pipeline_cfg.device = device;
  pipeline_cfg.rebatch_size = 64;
  pipeline_cfg.overlap_transfers = true;
  pipeline_cfg.lpt_order = true;
  pipeline_cfg.validate_sample = true;
  pipeline_cfg.validate_every = 11;
  const auto optimized = wsim::pipeline::run_pipeline(dataset, pipeline_cfg);
  std::cout << "\nwsim::pipeline with re-batching(64) + streams + LPT:\n"
            << "  Smith-Waterman: " << format_fixed(optimized.sw.gcups, 2)
            << " GCUPS across " << optimized.sw.batches << " batches\n"
            << "  PairHMM:        " << format_fixed(optimized.ph.gcups, 2)
            << " GCUPS across " << optimized.ph.batches << " batches\n"
            << "  validation:     " << optimized.validated << " sampled tasks, "
            << optimized.mismatches << " mismatches vs host references\n";
  return 0;
}
