// The paper's "normal flow for CUDA programmers": before implementing a
// shuffle version of a kernel, estimate whether it pays off — measure
// instruction latencies with the microbenchmarks, estimate the new
// register/shared-memory footprint, run the occupancy calculator (Eq. 8),
// estimate the iteration latency from the instruction breakdown, and feed
// both into the performance model (Eq. 7). This example automates that
// flow for the library's own kernels.

#include <iostream>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;
using wsim::util::format_percent;

struct Candidate {
  const char* name;
  wsim::simt::Kernel kernel;
};

}  // namespace

int main() {
  const auto dev = wsim::simt::make_k1200();
  std::cout << "Design advisor on " << dev.name << " — should you use shuffle?\n\n";

  // Step 1: measure instruction latencies (paper Section II-B).
  const auto lat = wsim::micro::measure_latencies(dev);
  std::cout << "Measured latencies: shfl " << format_fixed(lat.shfl.latency, 0)
            << " cy, sharedmem " << format_fixed(lat.sharedmem.latency, 0)
            << " cy, sync " << format_fixed(lat.sync.latency, 0) << " cy\n\n";

  // Step 2-4 for each candidate pair: resources -> occupancy -> breakdown
  // -> predicted CUPS.
  const std::vector<std::pair<Candidate, Candidate>> pairs = {
      {{"SW1 (shared)", wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {})},
       {"SW2 (shuffle)", wsim::kernels::build_sw_kernel(CommMode::kShuffle, {})}},
      {{"PH1 (shared)", wsim::kernels::build_ph_shared_kernel(128)},
       {"PH2 (shuffle)", wsim::kernels::build_ph_shuffle_kernel(4)}},
  };

  for (const auto& [shared, shuffle] : pairs) {
    wsim::util::Table table({"design", "regs", "smem", "occupancy",
                             "comm cycles/iter", "predicted GCUPS"});
    double predicted[2] = {0.0, 0.0};
    int index = 0;
    for (const Candidate* c : {&shared, &shuffle}) {
      const auto occ = wsim::simt::compute_occupancy(dev, c->kernel);
      const auto breakdown = wsim::model::hot_loop_breakdown(c->kernel);
      const double comm = breakdown.comm_cycles(dev.lat);
      // Communication plus a compute allowance (the alpha of Eq. 1):
      // arithmetic per iteration, at ~1 cycle effective each under ILP.
      const double iter_latency =
          comm + static_cast<double>(breakdown.other) /
                     c->kernel.warps_per_block();
      predicted[index] = wsim::model::predict_gcups(dev, occ, iter_latency);
      table.add_row({c->name, std::to_string(c->kernel.vreg_count),
                     std::to_string(c->kernel.smem_bytes),
                     format_percent(occ.fraction), format_fixed(comm, 0),
                     format_fixed(predicted[index], 1)});
      ++index;
    }
    table.print(std::cout);
    const double gain = predicted[1] / predicted[0];
    std::cout << (gain > 1.0 ? "=> advisor: implement the shuffle design ("
                             : "=> advisor: keep shared memory (")
              << format_fixed(gain, 2) << "x predicted)\n\n";
  }

  std::cout << "The paper's conclusion: both parallelism (occupancy) and\n"
               "latency matter; shuffle wins when the latency reduction\n"
               "outweighs any occupancy loss from higher register pressure.\n";
  return 0;
}
