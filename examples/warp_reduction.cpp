// Warp-shuffle showcase (paper Figures 1 and 2): the four shuffle
// variants' data movement, and the classic butterfly reduction — first
// with shared memory + barriers, then with shfl_down — timed on the
// simulated K1200 to show why shuffle wins.

#include <iostream>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/util/table.hpp"

namespace {

using namespace wsim::simt;

/// Runs a one-warp kernel writing one value per lane and returns lanes.
template <typename Body>
std::vector<std::int32_t> run_lanes(const DeviceSpec& dev, const char* name,
                                    Body body, long long* cycles = nullptr) {
  KernelBuilder kb(name, 32);
  const SReg out = kb.param();
  const VReg tid = kb.tid();
  const VReg v = body(kb, tid);
  kb.stg(kb.iadd(out, kb.imul(tid, imm_i64(4))), v);
  const Kernel kernel = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<BlockLaunch> blocks(1);
  blocks[0].args = {static_cast<std::uint64_t>(buf)};
  const LaunchResult res = launch(kernel, dev, gmem, blocks);
  if (cycles != nullptr) {
    *cycles = res.representative.cycles;
  }
  return gmem.read_i32(buf, 32);
}

void print_lanes(const char* label, const std::vector<std::int32_t>& lanes) {
  std::cout << label << ":";
  for (int i = 0; i < 8; ++i) {
    std::cout << ' ' << lanes[static_cast<std::size_t>(i)];
  }
  std::cout << " ... (lanes 0-7 of 32)\n";
}

}  // namespace

int main() {
  const DeviceSpec dev = wsim::simt::make_k1200();
  std::cout << "Shuffle variants (paper Fig. 1), input = lane id:\n";

  print_lanes("shfl(v, 5)      ", run_lanes(dev, "bcast", [](KernelBuilder& kb, VReg t) {
                return kb.shfl(t, imm_i64(5));
              }));
  print_lanes("shfl_up(v, 1)   ", run_lanes(dev, "up", [](KernelBuilder& kb, VReg t) {
                return kb.shfl_up(t, imm_i64(1));
              }));
  print_lanes("shfl_down(v, 2) ", run_lanes(dev, "down", [](KernelBuilder& kb, VReg t) {
                return kb.shfl_down(t, imm_i64(2));
              }));
  print_lanes("shfl_xor(v, 1)  ", run_lanes(dev, "xor", [](KernelBuilder& kb, VReg t) {
                return kb.shfl_xor(t, imm_i64(1));
              }));

  std::cout << "\nWarp sum reduction of 0..31 (paper Fig. 2):\n";

  long long smem_cycles = 0;
  const auto smem_result = run_lanes(
      dev, "reduce_smem",
      [](KernelBuilder& kb, VReg t) {
        const int buf = kb.alloc_smem(32 * 4);
        const VReg addr = kb.iadd(imm_i64(buf), kb.imul(t, imm_i64(4)));
        const VReg v = kb.mov(t);
        for (int delta = 16; delta >= 1; delta /= 2) {
          // Stage in shared memory, synchronize, read the partner lane.
          kb.sts(addr, v);
          kb.bar();
          const VReg paddr =
              kb.iadd(imm_i64(buf),
                      kb.imul(kb.iadd(t, imm_i64(delta)), imm_i64(4)));
          const VReg p = kb.setp(Cmp::kLt, DType::kI64, kb.iadd(t, imm_i64(delta)),
                                 imm_i64(32));
          const VReg other = kb.mov(imm_i64(0));
          kb.begin_pred(p);
          kb.lds_to(other, paddr);
          kb.end_pred();
          kb.assign(v, kb.iadd(v, other));
          kb.bar();
        }
        return v;
      },
      &smem_cycles);

  long long shfl_cycles = 0;
  const auto shfl_result = run_lanes(
      dev, "reduce_shfl",
      [](KernelBuilder& kb, VReg t) {
        const VReg v = kb.mov(t);
        for (int delta = 16; delta >= 1; delta /= 2) {
          kb.assign(v, kb.iadd(v, kb.shfl_down(v, imm_i64(delta))));
        }
        return v;
      },
      &shfl_cycles);

  wsim::util::Table table({"method", "lane 0 result", "device cycles"});
  table.add_row({"shared memory + 2x__syncthreads per stage",
                 std::to_string(smem_result[0]), std::to_string(smem_cycles)});
  table.add_row({"shfl_down (one instruction per stage)",
                 std::to_string(shfl_result[0]), std::to_string(shfl_cycles)});
  table.print(std::cout);
  std::cout << "(expected sum: " << 31 * 32 / 2 << ")\n\n"
            << "The shuffle version needs no shared memory, no barriers and\n"
            << "one instruction where the staged version needs three — the\n"
            << "benefits the paper quantifies in Section II.\n";
  return 0;
}
