// Quickstart: align a read against a reference window with the
// Smith-Waterman GPU kernels (shared-memory and shuffle designs), verify
// against the host reference, and score a read/haplotype pair with
// PairHMM — the library's core API in ~80 lines.

#include <iostream>

#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"

int main() {
  using wsim::kernels::CommMode;

  // A simulated GPU: the paper's Titan X (24 Maxwell SMs).
  const wsim::simt::DeviceSpec device = wsim::simt::make_titan_x();
  std::cout << "Device: " << device.name << " ("
            << wsim::simt::to_string(device.arch) << ", " << device.sm_count
            << " SMs, " << device.peak_gflops() << " GFLOPs)\n\n";

  // --- Smith-Waterman ------------------------------------------------------
  const std::string reference =
      "ACGTGGCTAAGCTTCGATCGATCGGGTACGTAGCTAGCTAGGCTTACGATCGTACGGATC";
  const std::string read = "TTCGATCGATCGGCTACGTAGCTAGCTAGG";  // one SNP + context

  const wsim::workload::SwBatch batch = {{read, reference}};
  wsim::kernels::SwRunOptions options;
  options.collect_outputs = true;

  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    const auto result = runner.run_batch(device, batch, options);
    const auto& out = result.outputs.front();
    std::cout << "SW (" << wsim::kernels::to_string(mode) << "): score "
              << out.best_score << ", CIGAR " << out.alignment.cigar
              << ", read[" << out.alignment.query_begin << ", "
              << out.alignment.query_end << ") vs ref["
              << out.alignment.target_begin << ", " << out.alignment.target_end
              << "), " << result.run.launch.representative.cycles
              << " device cycles\n";
  }

  // The host reference gives the same alignment.
  const auto host = wsim::align::sw_align(read, reference, {});
  std::cout << "SW (host reference): score " << host.score << ", CIGAR "
            << host.cigar << "\n\n";

  // --- PairHMM --------------------------------------------------------------
  wsim::align::PairHmmTask task;
  task.hap = reference;
  task.read = read;
  task.base_quals.assign(read.size(), 30);
  task.ins_quals.assign(read.size(), 45);
  task.del_quals.assign(read.size(), 45);

  wsim::kernels::PhRunOptions ph_options;
  ph_options.collect_outputs = true;
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    const auto result = runner.run_batch(device, {task}, ph_options);
    std::cout << "PairHMM (" << wsim::kernels::to_string(mode)
              << "): log10 likelihood " << result.log10.front() << ", "
              << result.run.launch.representative.cycles << " device cycles\n";
  }
  std::cout << "PairHMM (host reference): log10 likelihood "
            << wsim::align::pairhmm_log10(task) << '\n';
  return 0;
}
