// wsim — command-line driver for the warpshfl library.
//
//   wsim devices                         list simulated GPUs
//   wsim micro    [--device D]           run the Fig. 3 microbenchmarks
//   wsim sw       Q T [opts]             Smith-Waterman alignment
//   wsim nw       Q T [opts]             Needleman-Wunsch score
//   wsim pairhmm  READ HAP [opts]        PairHMM log10 likelihood
//   wsim workload [--regions N --seed S] dataset statistics
//   wsim sweep    [opts]                 GCUPS of all four kernels
//   wsim pipeline [opts]                 two-stage HaplotypeCaller pipeline
//   wsim serve-sim [--rate R --delay U]  replay a dataset through the
//                                        async alignment service
//   wsim fleet-sim [--fleet "A,B,..."]   same replay over a heterogeneous
//                                        multi-device fleet
//   wsim help | --help | -h              print usage and exit 0
//
// Common options: --device "K40"|"K1200"|"Titan X" (default K1200),
// --mode shared|shuffle (default shuffle), --seed N, --regions N,
// --batch N, --qual N, --threads N (or the WSIM_THREADS environment
// variable for commands using the shared engine).

#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wsim/fleet/fleet.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/pipeline/pipeline.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/simt/profile.hpp"
#include "wsim/simt/trace.hpp"
#include <fstream>
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/dataset_io.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;
using wsim::util::format_percent;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

wsim::simt::DeviceSpec device_from(const Args& args) {
  return wsim::simt::device_by_name(args.get("device", "K1200"));
}

/// Engine configuration from --threads (default: one worker per hardware
/// thread); every kernel-launching command builds one engine from this and
/// routes its launches through it.
wsim::simt::EngineOptions engine_options_from(const Args& args) {
  return wsim::simt::EngineOptions{
      .threads = static_cast<int>(args.get_int("threads", 0))};
}

CommMode mode_from(const Args& args) {
  const std::string mode = args.get("mode", "shuffle");
  if (mode == "shared") {
    return CommMode::kSharedMemory;
  }
  if (mode == "shuffle") {
    return CommMode::kShuffle;
  }
  throw wsim::util::CheckError("unknown --mode '" + mode + "' (shared|shuffle)");
}

int cmd_devices() {
  wsim::util::Table table({"name", "arch", "SMs", "clock (GHz)", "GFLOPs",
                           "smem BW (GB/s)", "gmem BW (GB/s)"});
  for (const auto& dev : wsim::simt::all_devices()) {
    table.add_row({dev.name, std::string(wsim::simt::to_string(dev.arch)),
                   std::to_string(dev.sm_count), format_fixed(dev.clock_ghz, 3),
                   format_fixed(dev.peak_gflops(), 0),
                   format_fixed(dev.shared_mem_bw_gbps(), 0),
                   format_fixed(dev.global_mem_bw_gbps, 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_micro(const Args& args) {
  const auto dev = device_from(args);
  const auto r = wsim::micro::measure_latencies(dev);
  wsim::util::Table table({"instruction", "latency (cycles)", "slope", "r^2"});
  const auto row = [&table](const char* name, const wsim::micro::LatencyEstimate& e) {
    table.add_row({name, format_fixed(e.latency, 1), format_fixed(e.slope, 2),
                   format_fixed(e.r_squared, 4)});
  };
  row("register", r.reg);
  row("shfl", r.shfl);
  row("shfl_up", r.shfl_up);
  row("shfl_down", r.shfl_down);
  row("shfl_xor", r.shfl_xor);
  row("shared memory", r.sharedmem);
  row("__syncthreads", r.sync);
  std::cout << "Device: " << dev.name << " ("
            << wsim::simt::to_string(dev.arch) << ")\n";
  table.print(std::cout);
  return 0;
}

int cmd_sw(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim sw QUERY TARGET");
  const auto dev = device_from(args);
  const wsim::kernels::SwRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::SwRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  wsim::simt::Trace trace;
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    opt.trace_representative = &trace;
  }
  const auto result = runner.run_batch(
      dev, {{args.positional[0], args.positional[1]}}, opt);
  const auto& out = result.outputs.front();
  std::cout << "kernel:   " << runner.kernel().name << " on " << dev.name << '\n'
            << "score:    " << out.best_score << '\n'
            << "cigar:    " << out.alignment.cigar << '\n'
            << "query:    [" << out.alignment.query_begin << ", "
            << out.alignment.query_end << ")\n"
            << "target:   [" << out.alignment.target_begin << ", "
            << out.alignment.target_end << ")\n"
            << "cycles:   " << result.run.launch.representative.cycles << '\n'
            << "occupancy " << format_percent(result.run.launch.occupancy.fraction)
            << '\n';
  if (args.options.count("profile") != 0) {
    const auto profile = wsim::simt::profile_block(
        runner.kernel(), dev, result.run.launch.representative, result.run.cells);
    std::cout << wsim::simt::format_profile(profile);
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    wsim::util::require(static_cast<bool>(os), "cannot open trace file " + trace_path);
    trace.write_chrome_json(os);
    std::cout << "trace (" << trace.size() << " events) written to " << trace_path
              << " — load in chrome://tracing or Perfetto\n";
  }
  return 0;
}

int cmd_nw(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim nw QUERY TARGET");
  const auto dev = device_from(args);
  const wsim::kernels::NwRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::NwRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  const auto result = runner.run_batch(
      dev, {{args.positional[0], args.positional[1]}}, opt);
  const auto host =
      wsim::align::nw_align(args.positional[0], args.positional[1], {});
  std::cout << "kernel: " << runner.kernel().name << " on " << dev.name << '\n'
            << "score:  " << result.scores.front() << '\n'
            << "cigar:  " << host.cigar << " (host backtrace)\n"
            << "cycles: " << result.run.launch.representative.cycles << '\n';
  return 0;
}

int cmd_pairhmm(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim pairhmm READ HAP");
  const auto dev = device_from(args);
  wsim::align::PairHmmTask task;
  task.read = args.positional[0];
  task.hap = args.positional[1];
  const auto qual = static_cast<std::uint8_t>(args.get_int("qual", 30));
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  const wsim::kernels::PhRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  const auto result = runner.run_batch(dev, {task}, opt);
  std::cout << "device:  " << dev.name << '\n'
            << "log10 L: " << format_fixed(result.log10.front(), 4) << '\n'
            << "cycles:  " << result.run.launch.representative.cycles << '\n';
  return 0;
}

int cmd_workload(const Args& args) {
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 16));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    ds = wsim::workload::generate_dataset(cfg);
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    wsim::workload::save_dataset(out, ds);
    std::cout << "dataset written to " << out << "\n";
  }
  const auto stats = wsim::workload::compute_stats(ds);
  wsim::util::Table table({"statistic", "value"});
  table.add_row({"regions", std::to_string(stats.regions)});
  table.add_row({"SW tasks", std::to_string(stats.sw_tasks)});
  table.add_row({"PairHMM tasks", std::to_string(stats.ph_tasks)});
  table.add_row({"avg SW tasks/region", format_fixed(stats.avg_sw_tasks_per_region, 2)});
  table.add_row({"avg PH tasks/region", format_fixed(stats.avg_ph_tasks_per_region, 2)});
  table.add_row({"max read length", std::to_string(stats.max_read_len)});
  table.add_row({"max haplotype length", std::to_string(stats.max_hap_len)});
  table.add_row({"total SW cells", std::to_string(stats.total_sw_cells)});
  table.add_row({"total PH cells", std::to_string(stats.total_ph_cells)});
  table.print(std::cout);
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto dev = device_from(args);
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 16));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    ds = wsim::workload::generate_dataset(cfg);
  }
  const auto batch_size = static_cast<std::size_t>(args.get_int("batch", 200));
  const auto sw_batches = wsim::workload::sw_rebatch(ds, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(ds, batch_size);

  // One engine for the whole sweep; its persistent cache replaces the
  // per-kernel external caches (entries are keyed by kernel identity, so
  // SW1/SW2 and the PH variants never alias).
  wsim::simt::ExecutionEngine engine(engine_options_from(args));

  wsim::util::Table table({"kernel", "avg GCUPS (incl. transfer)"});
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    double total = 0.0;
    for (const auto& batch : sw_batches) {
      wsim::kernels::SwRunOptions opt;
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
      opt.engine = &engine;
      total += runner.run_batch(dev, batch, opt).run.gcups_total();
    }
    table.add_row({mode == CommMode::kSharedMemory ? "SW1" : "SW2",
                   format_fixed(total / static_cast<double>(sw_batches.size()), 2)});
  }
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    double total = 0.0;
    for (const auto& batch : ph_batches) {
      wsim::kernels::PhRunOptions opt;
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
      opt.engine = &engine;
      total += runner.run_batch(dev, batch, opt).run.gcups_total();
    }
    table.add_row({mode == CommMode::kSharedMemory ? "PH1" : "PH2",
                   format_fixed(total / static_cast<double>(ph_batches.size()), 2)});
  }
  std::cout << "Device: " << dev.name << ", batch size " << batch_size << "\n";
  table.print(std::cout);
  return 0;
}

int cmd_pipeline(const Args& args) {
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 8));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    cfg.ph_tasks_per_region_mean = 24.0;
    ds = wsim::workload::generate_dataset(cfg);
  }
  wsim::pipeline::PipelineConfig cfg;
  cfg.device = device_from(args);
  if (mode_from(args) == CommMode::kSharedMemory) {
    cfg.sw_design = CommMode::kSharedMemory;
    cfg.ph_design = wsim::kernels::PhDesign::kShared;
  }
  cfg.rebatch_size = static_cast<std::size_t>(args.get_int("batch", 0));
  cfg.threads = static_cast<int>(args.get_int("threads", 0));
  cfg.overlap_transfers = args.options.count("streams") != 0;
  cfg.lpt_order = args.options.count("lpt") != 0;
  cfg.validate_sample = args.options.count("validate") != 0;
  const auto report = wsim::pipeline::run_pipeline(ds, cfg);

  wsim::util::Table table({"stage", "tasks", "batches", "cells", "seconds",
                           "GCUPS"});
  const auto row = [&table](const char* name, const wsim::pipeline::StageReport& r) {
    table.add_row({name, std::to_string(r.tasks), std::to_string(r.batches),
                   std::to_string(r.cells), format_fixed(r.seconds * 1e3, 3) + " ms",
                   format_fixed(r.gcups, 2)});
  };
  row("Smith-Waterman", report.sw);
  row("PairHMM", report.ph);
  std::cout << "Device: " << cfg.device.name << ", design: "
            << (cfg.sw_design == CommMode::kShuffle ? "shuffle" : "shared")
            << ", rebatch: " << cfg.rebatch_size << "\n";
  table.print(std::cout);
  if (cfg.validate_sample) {
    std::cout << "validation: " << report.validated << " sampled tasks, "
              << report.mismatches << " mismatches\n";
  }
  return report.mismatches == 0 ? 0 : 1;
}

wsim::workload::Dataset dataset_from(const Args& args, int default_regions) {
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    return wsim::workload::load_dataset(in);
  }
  wsim::workload::GeneratorConfig cfg;
  cfg.regions = static_cast<int>(args.get_int("regions", default_regions));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  return wsim::workload::generate_dataset(cfg);
}

/// Knobs shared by serve-sim and fleet-sim.
struct ReplaySetup {
  double rate = 0.0;
  double delay_us = 0.0;
  double deadline_us = 0.0;
};

ReplaySetup replay_setup_from(const Args& args) {
  ReplaySetup setup;
  setup.rate = std::stod(args.get("rate", "50000"));
  wsim::util::require(setup.rate > 0.0, "--rate must be > 0");
  setup.delay_us = std::stod(args.get("delay", "200"));
  setup.deadline_us = std::stod(args.get("deadline", "0"));
  return setup;
}

/// Fills the BatchPolicy/admission knobs common to both replay commands.
void apply_service_args(const Args& args, const ReplaySetup& setup,
                        wsim::serve::ServiceConfig& cfg) {
  cfg.policy.max_batch_delay = setup.delay_us * 1e-6;
  cfg.policy.target_batch_cells =
      static_cast<std::size_t>(args.get_int(
          "target-cells", static_cast<long>(cfg.policy.target_batch_cells)));
  cfg.policy.max_batch_tasks = static_cast<std::size_t>(
      args.get_int("max-batch", static_cast<long>(cfg.policy.max_batch_tasks)));
  cfg.max_queue_tasks =
      static_cast<std::size_t>(args.get_int("queue", 4096));
  // Timing-only by default: the load experiment needs latencies, not
  // alignments, and shape-cached execution keeps large replays fast.
  cfg.collect_outputs = args.options.count("outputs") != 0;
}

struct ReplayOutcome {
  std::size_t rejected = 0;
  double end = 0.0;  ///< simulated time after drain
};

/// Open-loop Poisson arrivals: flatten both task kinds, shuffle so SW and
/// PairHMM interleave, then submit with exponential interarrival gaps at
/// the requested rate — the clock advances to each arrival first, so
/// flushes and deliveries happen exactly when the simulated time says.
ReplayOutcome replay_poisson(wsim::serve::AlignmentService& service,
                             const wsim::workload::Dataset& ds,
                             const ReplaySetup& setup, std::uint64_t seed) {
  namespace serve = wsim::serve;
  struct Arrival {
    bool is_sw = false;
    std::size_t index = 0;
  };
  const auto sw_tasks = wsim::workload::sw_all_tasks(ds);
  const auto ph_tasks = wsim::workload::ph_all_tasks(ds);
  std::vector<Arrival> arrivals;
  arrivals.reserve(sw_tasks.size() + ph_tasks.size());
  for (std::size_t i = 0; i < sw_tasks.size(); ++i) {
    arrivals.push_back({true, i});
  }
  for (std::size_t i = 0; i < ph_tasks.size(); ++i) {
    arrivals.push_back({false, i});
  }
  wsim::util::require(!arrivals.empty(), "replay: dataset has no tasks");
  wsim::util::Rng rng(seed ^ 0x5e27e5e27e5e27e5ULL);
  rng.shuffle(arrivals);

  ReplayOutcome outcome;
  double t = 0.0;
  for (const Arrival& arrival : arrivals) {
    t += -std::log(1.0 - rng.uniform01()) / setup.rate;
    service.advance_to(t);
    const auto deadline =
        setup.deadline_us > 0.0
            ? std::optional<double>(t + setup.deadline_us * 1e-6)
            : std::nullopt;
    bool admitted = false;
    if (arrival.is_sw) {
      serve::SwRequest request;
      request.task = sw_tasks[arrival.index];
      request.deadline = deadline;
      admitted = service.submit(std::move(request)).admitted();
    } else {
      serve::PairHmmRequest request;
      request.task = ph_tasks[arrival.index];
      request.deadline = deadline;
      admitted = service.submit(std::move(request)).admitted();
    }
    if (!admitted) {
      ++outcome.rejected;
    }
  }
  outcome.end = service.drain();
  return outcome;
}

/// Prints the ServiceStats table shared by serve-sim and fleet-sim.
void print_service_stats(const wsim::serve::ServiceStats& stats,
                         const ReplayOutcome& outcome, double deadline_us) {
  wsim::util::Table table({"metric", "value"});
  table.add_row({"submitted", std::to_string(stats.submitted())});
  table.add_row({"completed", std::to_string(stats.completed())});
  table.add_row({"rejected (backpressure)", std::to_string(outcome.rejected)});
  table.add_row({"batches", std::to_string(stats.batch_sizes.batches)});
  table.add_row({"mean batch size", format_fixed(stats.batch_sizes.mean_size(), 2)});
  table.add_row({"batch-size histogram", stats.batch_sizes.format()});
  table.add_row({"latency p50", format_fixed(stats.latency.p50 * 1e3, 3) + " ms"});
  table.add_row({"latency p95", format_fixed(stats.latency.p95 * 1e3, 3) + " ms"});
  table.add_row({"latency p99", format_fixed(stats.latency.p99 * 1e3, 3) + " ms"});
  table.add_row({"latency mean", format_fixed(stats.latency.mean * 1e3, 3) + " ms"});
  table.add_row({"queue wait mean",
                 format_fixed(stats.queue_wait.mean * 1e3, 3) + " ms"});
  table.add_row({"throughput",
                 format_fixed(stats.throughput_tasks_per_second(), 0) + " tasks/s"});
  table.add_row({"GCUPS", format_fixed(stats.gcups(), 2)});
  table.add_row({"device utilization",
                 format_percent(stats.device_utilization())});
  if (deadline_us > 0.0) {
    table.add_row({"deadlines met", std::to_string(stats.deadlines_met) + " / " +
                   std::to_string(stats.deadlines_met + stats.deadlines_missed)});
  }
  table.add_row({"simulated end time", format_fixed(outcome.end * 1e3, 3) + " ms"});
  table.print(std::cout);
}

/// Dumps the stats to the --json path when given (serve::write_stats_json
/// schema, mirroring the bench sweeps' JSON field names).
void maybe_write_stats_json(const Args& args,
                            const wsim::serve::ServiceStats& stats) {
  const std::string path = args.get("json", "");
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  wsim::util::require(static_cast<bool>(os), "cannot open json file " + path);
  wsim::serve::write_stats_json(os, stats);
  os << '\n';
  std::cout << "stats written to " << path << "\n";
}

int cmd_serve_sim(const Args& args) {
  namespace serve = wsim::serve;
  const auto ds = dataset_from(args, /*default_regions=*/8);
  const ReplaySetup setup = replay_setup_from(args);

  serve::ServiceConfig cfg;
  cfg.device = device_from(args);
  if (mode_from(args) == CommMode::kSharedMemory) {
    cfg.sw_design = CommMode::kSharedMemory;
    cfg.ph_design = wsim::kernels::PhDesign::kShared;
  }
  apply_service_args(args, setup, cfg);
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  cfg.engine = &engine;
  serve::AlignmentService service(std::move(cfg));

  const ReplayOutcome outcome = replay_poisson(
      service, ds, setup, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto stats = service.stats();

  std::cout << "Device: " << service.config().device.name << ", rate "
            << format_fixed(setup.rate, 0) << " req/s, batching delay "
            << format_fixed(setup.delay_us, 0) << " us"
            << (setup.deadline_us > 0.0
                    ? ", deadline " + format_fixed(setup.deadline_us, 0) + " us"
                    : std::string())
            << "\n";
  print_service_stats(stats, outcome, setup.deadline_us);
  maybe_write_stats_json(args, stats);
  return 0;
}

int cmd_fleet_sim(const Args& args) {
  namespace fleet = wsim::fleet;
  namespace serve = wsim::serve;
  const auto ds = dataset_from(args, /*default_regions=*/8);
  const ReplaySetup setup = replay_setup_from(args);

  // --fleet "K40,K1200,Titan X": comma-separated device names, each one
  // simulated worker. Kernel designs are chosen per device by the
  // performance model unless --mode pins them fleet-wide.
  fleet::FleetConfig fleet_cfg;
  const std::string fleet_names = args.get("fleet", "K40,K1200,Titan X");
  std::size_t begin = 0;
  while (begin <= fleet_names.size()) {
    std::size_t end = fleet_names.find(',', begin);
    if (end == std::string::npos) {
      end = fleet_names.size();
    }
    const std::string name = fleet_names.substr(begin, end - begin);
    if (!name.empty()) {
      fleet::WorkerConfig wc;
      wc.device = wsim::simt::device_by_name(name);
      if (args.options.count("mode") != 0 &&
          mode_from(args) == CommMode::kSharedMemory) {
        wc.sw_design = CommMode::kSharedMemory;
        wc.ph_design = wsim::kernels::PhDesign::kShared;
      }
      fleet_cfg.workers.push_back(std::move(wc));
    }
    begin = end + 1;
  }
  wsim::util::require(!fleet_cfg.workers.empty(),
                      "fleet-sim: --fleet names no devices");
  fleet_cfg.policy = fleet::placement_policy_by_name(args.get("policy", "model"));
  fleet_cfg.faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  fleet_cfg.faults.launch_failure_prob = std::stod(args.get("fail-prob", "0"));
  fleet_cfg.faults.slowdown_prob = std::stod(args.get("slow-prob", "0"));
  fleet_cfg.faults.slowdown_factor = std::stod(args.get("slow-factor", "4"));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  fleet_cfg.engine = &engine;
  fleet::FleetExecutor executor(std::move(fleet_cfg));

  serve::ServiceConfig cfg;
  apply_service_args(args, setup, cfg);
  cfg.fleet = &executor;
  serve::AlignmentService service(std::move(cfg));

  const ReplayOutcome outcome = replay_poisson(
      service, ds, setup, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto stats = service.stats();
  const auto fleet_stats = executor.stats();

  std::cout << "Fleet: " << executor.size() << " devices, policy "
            << fleet::to_string(executor.config().policy) << ", rate "
            << format_fixed(setup.rate, 0) << " req/s, batching delay "
            << format_fixed(setup.delay_us, 0) << " us"
            << (executor.config().faults.enabled()
                    ? ", faults on (seed " +
                          std::to_string(executor.config().faults.seed) + ")"
                    : std::string())
            << "\n";
  print_service_stats(stats, outcome, setup.deadline_us);

  const auto ph_design_name = [](wsim::kernels::PhDesign design) {
    switch (design) {
      case wsim::kernels::PhDesign::kShared:
        return "shared";
      case wsim::kernels::PhDesign::kShuffle:
        return "shuffle";
      case wsim::kernels::PhDesign::kHybrid:
        return "hybrid";
    }
    return "?";
  };
  const double duration = stats.duration_seconds();
  wsim::util::Table devices({"device", "SW", "PH", "batches", "tasks", "cells",
                             "busy (ms)", "util", "failures", "slowdowns"});
  for (std::size_t i = 0; i < fleet_stats.devices.size(); ++i) {
    const auto& d = fleet_stats.devices[i];
    devices.add_row({d.name, std::string(wsim::kernels::to_string(d.sw_design)),
                     ph_design_name(d.ph_design), std::to_string(d.batches),
                     std::to_string(d.tasks), std::to_string(d.cells),
                     format_fixed(d.busy_seconds * 1e3, 3),
                     format_percent(fleet_stats.utilization(i, duration)),
                     std::to_string(d.launch_failures),
                     std::to_string(d.slowdowns)});
  }
  devices.print(std::cout);
  std::cout << "dispatches " << fleet_stats.dispatches << ", retries "
            << fleet_stats.retries << ", requeues " << fleet_stats.requeues
            << ", busy skew " << format_fixed(fleet_stats.busy_skew(), 3)
            << "\n";
  maybe_write_stats_json(args, stats);
  return 0;
}

void print_usage(std::ostream& os) {
  os <<
      "usage: wsim <command> [options]\n"
      "commands:\n"
      "  devices                      list simulated GPUs\n"
      "  micro    [--device D]        Fig. 3 instruction-latency microbenchmarks\n"
      "  sw       QUERY TARGET [--profile ''] Smith-Waterman alignment\n"
      "  nw       QUERY TARGET        Needleman-Wunsch global score\n"
      "  pairhmm  READ HAP [--qual N] PairHMM log10 likelihood\n"
      "  workload [--regions N] [--in F] [--out F]  dataset stats / convert\n"
      "  sweep    [--batch N] [--in F]    GCUPS of SW1/SW2/PH1/PH2\n"
      "  pipeline [--in F] [--batch N] [--streams ''] [--lpt ''] [--validate '']\n"
      "           run the two-stage HaplotypeCaller pipeline\n"
      "  serve-sim [--in F] [--rate R] [--delay US] [--deadline US] [--queue N]\n"
      "            [--target-cells C] [--max-batch N] [--outputs ''] [--json F]\n"
      "           replay a dataset as an open-loop arrival process (R requests\n"
      "           per simulated second) through the async alignment service\n"
      "  fleet-sim [--fleet \"K40,K1200,Titan X\"] [--policy model|rr|least-cells]\n"
      "            [--fail-prob P] [--slow-prob P] [--slow-factor X]\n"
      "            [--fault-seed S] [--json F] [+ serve-sim options]\n"
      "           the serve-sim replay over a heterogeneous multi-device fleet\n"
      "           with model-guided placement, fault injection, and retry;\n"
      "           prints per-device utilization and dispatch accounting\n"
      "  help | --help | -h           print this usage and exit 0\n"
      "common options: --device \"K40\"|\"K1200\"|\"Titan X\", --mode shared|shuffle,\n"
      "                --seed N, --regions N\n"
      "                --threads N  simulation worker threads for block execution\n"
      "                             (default: one per hardware thread; results\n"
      "                              are identical at any thread count)\n"
      "environment:    WSIM_THREADS=N  worker count of the process-wide shared\n"
      "                             engine, used whenever --threads is absent or\n"
      "                             <= 0 (pipeline, benches, library default)\n";
}

int usage_error() {
  print_usage(std::cerr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage_error();
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  const Args args = parse(argc, argv);
  try {
    if (command == "devices") {
      return cmd_devices();
    }
    if (command == "micro") {
      return cmd_micro(args);
    }
    if (command == "sw") {
      return cmd_sw(args);
    }
    if (command == "nw") {
      return cmd_nw(args);
    }
    if (command == "pairhmm") {
      return cmd_pairhmm(args);
    }
    if (command == "workload") {
      return cmd_workload(args);
    }
    if (command == "sweep") {
      return cmd_sweep(args);
    }
    if (command == "pipeline") {
      return cmd_pipeline(args);
    }
    if (command == "serve-sim") {
      return cmd_serve_sim(args);
    }
    if (command == "fleet-sim") {
      return cmd_fleet_sim(args);
    }
    std::cerr << "unknown command '" << command << "'\n";
    return usage_error();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
