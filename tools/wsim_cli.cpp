// wsim — command-line driver for the warpshfl library.
//
//   wsim devices                         list simulated GPUs
//   wsim micro    [--device D]           run the Fig. 3 microbenchmarks
//   wsim sw       Q T [opts]             Smith-Waterman alignment
//   wsim nw       Q T [opts]             Needleman-Wunsch score
//   wsim pairhmm  READ HAP [opts]        PairHMM log10 likelihood
//   wsim sw-run   [--kernel K --profile P] one SW batch through a named
//                                        kernel subsystem (task-per-block
//                                        or wavefront tiles)
//   wsim workload [--regions N --seed S] dataset statistics
//   wsim sweep    [opts]                 GCUPS of all four kernels
//   wsim pipeline [opts]                 two-stage HaplotypeCaller pipeline
//   wsim serve-sim [--rate R --delay U]  replay a dataset through the
//                                        async alignment service
//   wsim fleet-sim [--fleet "A,B,..."]   same replay over a heterogeneous
//                                        multi-device fleet
//   wsim cluster-sim [--shape S]         multi-tenant trace replay on a
//                                        dynamically autoscaled fleet
//   wsim guard-sim [--flip-prob "P,..."] sweep SDC injection rate x
//                                        detection mode, counting escaped
//                                        corruptions against a fault-free
//                                        baseline
//   wsim help | --help | -h              print usage and exit 0
//
// The authoritative command list lives in wsim::cli::commands(); main()
// checks its dispatch table against that registry at startup.
//
// Common options: --device "K40"|"K1200"|"Titan X" (default K1200),
// --mode shared|shuffle (default shuffle), --seed N, --regions N,
// --batch N, --qual N, --threads N (or the WSIM_THREADS environment
// variable for commands using the shared engine).

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wsim/cli/commands.hpp"
#include "wsim/cluster/cluster.hpp"
#include "wsim/obs/chrome_trace.hpp"
#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/pipeline/pipeline.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/simt/profile.hpp"
#include "wsim/simt/trace.hpp"
#include <fstream>
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/dataset_io.hpp"
#include "wsim/workload/generator.hpp"
#include "wsim/workload/trace.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;
using wsim::util::format_percent;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long get_int(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

wsim::simt::DeviceSpec device_from(const Args& args) {
  return wsim::simt::device_by_name(args.get("device", "K1200"));
}

/// Engine configuration from --threads (default: one worker per hardware
/// thread); every kernel-launching command builds one engine from this and
/// routes its launches through it.
wsim::simt::EngineOptions engine_options_from(const Args& args) {
  return wsim::simt::EngineOptions{
      .threads = static_cast<int>(args.get_int("threads", 0))};
}

CommMode mode_from(const Args& args) {
  const std::string mode = args.get("mode", "shuffle");
  if (mode == "shared") {
    return CommMode::kSharedMemory;
  }
  if (mode == "shuffle") {
    return CommMode::kShuffle;
  }
  throw wsim::util::CheckError("unknown --mode '" + mode + "' (shared|shuffle)");
}

int cmd_devices() {
  wsim::util::Table table({"name", "arch", "SMs", "clock (GHz)", "GFLOPs",
                           "smem BW (GB/s)", "gmem BW (GB/s)"});
  for (const auto& dev : wsim::simt::all_devices()) {
    table.add_row({dev.name, std::string(wsim::simt::to_string(dev.arch)),
                   std::to_string(dev.sm_count), format_fixed(dev.clock_ghz, 3),
                   format_fixed(dev.peak_gflops(), 0),
                   format_fixed(dev.shared_mem_bw_gbps(), 0),
                   format_fixed(dev.global_mem_bw_gbps, 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_micro(const Args& args) {
  const auto dev = device_from(args);
  const auto r = wsim::micro::measure_latencies(dev);
  wsim::util::Table table({"instruction", "latency (cycles)", "slope", "r^2"});
  const auto row = [&table](const char* name, const wsim::micro::LatencyEstimate& e) {
    table.add_row({name, format_fixed(e.latency, 1), format_fixed(e.slope, 2),
                   format_fixed(e.r_squared, 4)});
  };
  row("register", r.reg);
  row("shfl", r.shfl);
  row("shfl_up", r.shfl_up);
  row("shfl_down", r.shfl_down);
  row("shfl_xor", r.shfl_xor);
  row("shared memory", r.sharedmem);
  row("__syncthreads", r.sync);
  std::cout << "Device: " << dev.name << " ("
            << wsim::simt::to_string(dev.arch) << ")\n";
  table.print(std::cout);
  return 0;
}

int cmd_sw(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim sw QUERY TARGET");
  const auto dev = device_from(args);
  const wsim::kernels::SwRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::SwRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  wsim::simt::Trace trace;
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    opt.trace_representative = &trace;
  }
  const auto result = runner.run_batch(
      dev, {{args.positional[0], args.positional[1]}}, opt);
  const auto& out = result.outputs.front();
  std::cout << "kernel:   " << runner.kernel().name << " on " << dev.name << '\n'
            << "score:    " << out.best_score << '\n'
            << "cigar:    " << out.alignment.cigar << '\n'
            << "query:    [" << out.alignment.query_begin << ", "
            << out.alignment.query_end << ")\n"
            << "target:   [" << out.alignment.target_begin << ", "
            << out.alignment.target_end << ")\n"
            << "cycles:   " << result.run.launch.representative.cycles << '\n'
            << "occupancy " << format_percent(result.run.launch.occupancy.fraction)
            << '\n';
  if (args.options.count("profile") != 0) {
    const auto profile = wsim::simt::profile_block(
        runner.kernel(), dev, result.run.launch.representative, result.run.cells);
    std::cout << wsim::simt::format_profile(profile);
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    wsim::util::require(static_cast<bool>(os), "cannot open trace file " + trace_path);
    trace.write_chrome_json(os);
    std::cout << "trace (" << trace.size() << " events) written to " << trace_path
              << " — load in chrome://tracing or Perfetto\n";
  }
  return 0;
}

int cmd_nw(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim nw QUERY TARGET");
  const auto dev = device_from(args);
  const wsim::kernels::NwRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::NwRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  const auto result = runner.run_batch(
      dev, {{args.positional[0], args.positional[1]}}, opt);
  const auto host =
      wsim::align::nw_align(args.positional[0], args.positional[1], {});
  std::cout << "kernel: " << runner.kernel().name << " on " << dev.name << '\n'
            << "score:  " << result.scores.front() << '\n'
            << "cigar:  " << host.cigar << " (host backtrace)\n"
            << "cycles: " << result.run.launch.representative.cycles << '\n';
  return 0;
}

int cmd_pairhmm(const Args& args) {
  wsim::util::require(args.positional.size() == 2, "usage: wsim pairhmm READ HAP");
  const auto dev = device_from(args);
  wsim::align::PairHmmTask task;
  task.read = args.positional[0];
  task.hap = args.positional[1];
  const auto qual = static_cast<std::uint8_t>(args.get_int("qual", 30));
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  const wsim::kernels::PhRunner runner(mode_from(args));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &engine;
  const auto result = runner.run_batch(dev, {task}, opt);
  std::cout << "device:  " << dev.name << '\n'
            << "log10 L: " << format_fixed(result.log10.front(), 4) << '\n'
            << "cycles:  " << result.run.launch.representative.cycles << '\n';
  return 0;
}

int cmd_workload(const Args& args) {
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 16));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    ds = wsim::workload::generate_dataset(cfg);
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    wsim::workload::save_dataset(out, ds);
    std::cout << "dataset written to " << out << "\n";
  }
  const auto stats = wsim::workload::compute_stats(ds);
  wsim::util::Table table({"statistic", "value"});
  table.add_row({"regions", std::to_string(stats.regions)});
  table.add_row({"SW tasks", std::to_string(stats.sw_tasks)});
  table.add_row({"PairHMM tasks", std::to_string(stats.ph_tasks)});
  table.add_row({"avg SW tasks/region", format_fixed(stats.avg_sw_tasks_per_region, 2)});
  table.add_row({"avg PH tasks/region", format_fixed(stats.avg_ph_tasks_per_region, 2)});
  table.add_row({"max read length", std::to_string(stats.max_read_len)});
  table.add_row({"max haplotype length", std::to_string(stats.max_hap_len)});
  table.add_row({"total SW cells", std::to_string(stats.total_sw_cells)});
  table.add_row({"total PH cells", std::to_string(stats.total_ph_cells)});
  table.print(std::cout);
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto dev = device_from(args);
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 16));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    ds = wsim::workload::generate_dataset(cfg);
  }
  const auto batch_size = static_cast<std::size_t>(args.get_int("batch", 200));
  const auto sw_batches = wsim::workload::sw_rebatch(ds, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(ds, batch_size);

  // One engine for the whole sweep; its persistent cache replaces the
  // per-kernel external caches (entries are keyed by kernel identity, so
  // SW1/SW2 and the PH variants never alias).
  wsim::simt::ExecutionEngine engine(engine_options_from(args));

  wsim::util::Table table({"kernel", "avg GCUPS (incl. transfer)"});
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    double total = 0.0;
    for (const auto& batch : sw_batches) {
      wsim::kernels::SwRunOptions opt;
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
      opt.engine = &engine;
      total += runner.run_batch(dev, batch, opt).run.gcups_total();
    }
    table.add_row({mode == CommMode::kSharedMemory ? "SW1" : "SW2",
                   format_fixed(total / static_cast<double>(sw_batches.size()), 2)});
  }
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    double total = 0.0;
    for (const auto& batch : ph_batches) {
      wsim::kernels::PhRunOptions opt;
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
      opt.engine = &engine;
      total += runner.run_batch(dev, batch, opt).run.gcups_total();
    }
    table.add_row({mode == CommMode::kSharedMemory ? "PH1" : "PH2",
                   format_fixed(total / static_cast<double>(ph_batches.size()), 2)});
  }
  std::cout << "Device: " << dev.name << ", batch size " << batch_size << "\n";
  table.print(std::cout);
  return 0;
}

int cmd_pipeline(const Args& args) {
  wsim::workload::Dataset ds;
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    ds = wsim::workload::load_dataset(in);
  } else {
    wsim::workload::GeneratorConfig cfg;
    cfg.regions = static_cast<int>(args.get_int("regions", 8));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    cfg.ph_tasks_per_region_mean = 24.0;
    ds = wsim::workload::generate_dataset(cfg);
  }
  wsim::pipeline::PipelineConfig cfg;
  cfg.device = device_from(args);
  if (mode_from(args) == CommMode::kSharedMemory) {
    cfg.sw_design = CommMode::kSharedMemory;
    cfg.ph_design = wsim::kernels::PhDesign::kShared;
  }
  cfg.rebatch_size = static_cast<std::size_t>(args.get_int("batch", 0));
  cfg.threads = static_cast<int>(args.get_int("threads", 0));
  cfg.overlap_transfers = args.options.count("streams") != 0;
  cfg.lpt_order = args.options.count("lpt") != 0;
  cfg.validate_sample = args.options.count("validate") != 0;
  const auto report = wsim::pipeline::run_pipeline(ds, cfg);

  wsim::util::Table table({"stage", "tasks", "batches", "cells", "seconds",
                           "GCUPS"});
  const auto row = [&table](const char* name, const wsim::pipeline::StageReport& r) {
    table.add_row({name, std::to_string(r.tasks), std::to_string(r.batches),
                   std::to_string(r.cells), format_fixed(r.seconds * 1e3, 3) + " ms",
                   format_fixed(r.gcups, 2)});
  };
  row("Smith-Waterman", report.sw);
  row("PairHMM", report.ph);
  std::cout << "Device: " << cfg.device.name << ", design: "
            << (cfg.sw_design == CommMode::kShuffle ? "shuffle" : "shared")
            << ", rebatch: " << cfg.rebatch_size << "\n";
  table.print(std::cout);
  if (cfg.validate_sample) {
    std::cout << "validation: " << report.validated << " sampled tasks, "
              << report.mismatches << " mismatches\n";
  }
  return report.mismatches == 0 ? 0 : 1;
}

wsim::workload::Dataset dataset_from(const Args& args, int default_regions) {
  const std::string in = args.get("in", "");
  if (!in.empty()) {
    return wsim::workload::load_dataset(in);
  }
  // --profile swaps the SW length family (short-read is the generator
  // default; long-read/contig open the intra-task wavefront regime).
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string profile = args.get("profile", "");
  wsim::workload::GeneratorConfig cfg =
      profile.empty()
          ? wsim::workload::GeneratorConfig{}
          : wsim::workload::profile_config(
                wsim::workload::length_profile_by_name(profile), seed);
  cfg.regions = static_cast<int>(args.get_int("regions", default_regions));
  cfg.seed = seed;
  return wsim::workload::generate_dataset(cfg);
}

int cmd_sw_run(const Args& args) {
  const auto dev = device_from(args);
  const wsim::kernels::SwKernelChoice choice =
      wsim::kernels::sw_kernel_by_name(args.get("kernel", "wf-shuffle"));
  const auto profile = wsim::workload::length_profile_by_name(
      args.get("profile", "long-read"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto want = static_cast<std::size_t>(args.get_int("tasks", 4));
  wsim::util::require(want >= 1, "sw-run: --tasks must be >= 1");

  wsim::workload::GeneratorConfig cfg =
      wsim::workload::profile_config(profile, seed);
  cfg.regions = static_cast<int>(want);  // >= one SW task per region
  auto batch =
      wsim::workload::sw_all_tasks(wsim::workload::generate_dataset(cfg));
  if (batch.size() > want) {
    batch.resize(want);
  }

  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  const bool verify = args.options.count("verify") != 0;
  const wsim::align::SwParams params;

  wsim::kernels::KernelRunResult run;
  std::vector<wsim::kernels::SwTaskOutput> outputs;
  std::size_t launches = 1;
  std::size_t blocks = batch.size();
  std::string kernel_name;
  if (choice.intra) {
    const wsim::kernels::WavefrontSwRunner runner(choice.wf_variant, params);
    wsim::kernels::WfRunOptions opt;
    opt.engine = &engine;
    if (verify) {
      opt.collect_outputs = true;
    } else {
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
    }
    auto result = runner.run_batch(dev, batch, opt);
    run = std::move(result.run);
    outputs = std::move(result.outputs);
    launches = result.launches;
    blocks = result.blocks;
    kernel_name = runner.kernel().name;
  } else {
    const wsim::kernels::SwRunner runner(choice.inter_mode, params);
    wsim::kernels::SwRunOptions opt;
    opt.engine = &engine;
    if (verify) {
      opt.collect_outputs = true;
    } else {
      opt.mode = wsim::simt::ExecMode::kCachedByShape;
      opt.use_engine_cache = true;
    }
    auto result = runner.run_batch(dev, batch, opt);
    run = std::move(result.run);
    outputs = std::move(result.outputs);
    kernel_name = runner.kernel().name;
  }

  wsim::util::Table table({"metric", "value"});
  table.add_row({"kernel", wsim::kernels::sw_kernel_name(choice) + " (" +
                               kernel_name + ")"});
  table.add_row({"device", dev.name});
  table.add_row({"profile", std::string(wsim::workload::to_string(profile))});
  table.add_row({"tasks", std::to_string(batch.size())});
  table.add_row({"cells", std::to_string(run.cells)});
  table.add_row({"launches", std::to_string(launches)});
  table.add_row({"blocks", std::to_string(blocks)});
  table.add_row({"kernel time", format_fixed(run.launch.kernel_seconds * 1e3, 3) + " ms"});
  table.add_row({"total time", format_fixed(run.launch.total_seconds() * 1e3, 3) + " ms"});
  table.add_row({"GCUPS (kernel)", format_fixed(run.gcups_kernel(), 2)});
  table.add_row({"GCUPS (total)", format_fixed(run.gcups_total(), 2)});
  table.add_row({"occupancy", format_percent(run.launch.occupancy.fraction)});
  table.print(std::cout);
  if (verify) {
    const auto verdict = wsim::guard::validate_sw(batch, outputs, params);
    if (verdict.has_value()) {
      std::cout << "verify: FAILED — " << *verdict << "\n";
      return 1;
    }
    std::cout << "verify: OK (" << batch.size()
              << " CIGARs re-scored against the scoring scheme)\n";
  }
  return 0;
}

/// Knobs shared by serve-sim and fleet-sim.
struct ReplaySetup {
  double rate = 0.0;
  double delay_us = 0.0;
  double deadline_us = 0.0;
};

ReplaySetup replay_setup_from(const Args& args) {
  ReplaySetup setup;
  setup.rate = std::stod(args.get("rate", "50000"));
  wsim::util::require(setup.rate > 0.0, "--rate must be > 0");
  setup.delay_us = std::stod(args.get("delay", "200"));
  setup.deadline_us = std::stod(args.get("deadline", "0"));
  return setup;
}

/// Fills the BatchPolicy/admission knobs common to both replay commands.
void apply_service_args(const Args& args, const ReplaySetup& setup,
                        wsim::serve::ServiceConfig& cfg) {
  cfg.policy.max_batch_delay = setup.delay_us * 1e-6;
  cfg.policy.target_batch_cells =
      static_cast<std::size_t>(args.get_int(
          "target-cells", static_cast<long>(cfg.policy.target_batch_cells)));
  cfg.policy.max_batch_tasks = static_cast<std::size_t>(
      args.get_int("max-batch", static_cast<long>(cfg.policy.max_batch_tasks)));
  cfg.max_queue_tasks =
      static_cast<std::size_t>(args.get_int("queue", 4096));
  // Timing-only by default: the load experiment needs latencies, not
  // alignments, and shape-cached execution keeps large replays fast.
  cfg.collect_outputs = args.options.count("outputs") != 0;
}

/// Arms the obs subsystem for this run when --trace-out / --metrics-out
/// is present: full tracing when a Chrome trace was requested, metrics
/// only when just the flat dump was. Without either flag the default
/// kOff level keeps every instrumentation site a no-op.
void configure_obs(const Args& args) {
  const bool want_trace = !args.get("trace-out", "").empty();
  const bool want_metrics = !args.get("metrics-out", "").empty();
  if (want_trace) {
    wsim::obs::set_level(wsim::obs::Level::kTrace);
  } else if (want_metrics) {
    wsim::obs::set_level(wsim::obs::Level::kMetrics);
  }
}

/// Writes the Chrome trace and/or metrics dump the run recorded.
void write_obs_outputs(const Args& args) {
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    wsim::util::require(static_cast<bool>(os),
                        "cannot open trace file " + trace_path);
    wsim::obs::write_chrome_trace(os);
    std::cout << "trace (" << wsim::obs::collect().size()
              << " events) written to " << trace_path
              << " — load in chrome://tracing or Perfetto\n";
  }
  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    wsim::util::require(static_cast<bool>(os),
                        "cannot open metrics file " + metrics_path);
    wsim::obs::write_metrics_json(os);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
}

struct ReplayOutcome {
  std::size_t rejected = 0;
  double end = 0.0;  ///< simulated time after drain
};

/// Open-loop Poisson arrivals: flatten both task kinds, shuffle so SW and
/// PairHMM interleave, then submit with exponential interarrival gaps at
/// the requested rate — the clock advances to each arrival first, so
/// flushes and deliveries happen exactly when the simulated time says.
ReplayOutcome replay_poisson(wsim::serve::AlignmentService& service,
                             const wsim::workload::Dataset& ds,
                             const ReplaySetup& setup, std::uint64_t seed) {
  namespace serve = wsim::serve;
  struct Arrival {
    bool is_sw = false;
    std::size_t index = 0;
  };
  const auto sw_tasks = wsim::workload::sw_all_tasks(ds);
  const auto ph_tasks = wsim::workload::ph_all_tasks(ds);
  std::vector<Arrival> arrivals;
  arrivals.reserve(sw_tasks.size() + ph_tasks.size());
  for (std::size_t i = 0; i < sw_tasks.size(); ++i) {
    arrivals.push_back({true, i});
  }
  for (std::size_t i = 0; i < ph_tasks.size(); ++i) {
    arrivals.push_back({false, i});
  }
  wsim::util::require(!arrivals.empty(), "replay: dataset has no tasks");
  wsim::util::Rng rng(seed ^ 0x5e27e5e27e5e27e5ULL);
  rng.shuffle(arrivals);

  ReplayOutcome outcome;
  double t = 0.0;
  for (const Arrival& arrival : arrivals) {
    t += -std::log(1.0 - rng.uniform01()) / setup.rate;
    service.advance_to(t);
    const auto deadline =
        setup.deadline_us > 0.0
            ? std::optional<double>(t + setup.deadline_us * 1e-6)
            : std::nullopt;
    bool admitted = false;
    if (arrival.is_sw) {
      serve::SwRequest request;
      request.task = sw_tasks[arrival.index];
      request.deadline = deadline;
      admitted = service.submit(std::move(request)).admitted();
    } else {
      serve::PairHmmRequest request;
      request.task = ph_tasks[arrival.index];
      request.deadline = deadline;
      admitted = service.submit(std::move(request)).admitted();
    }
    if (!admitted) {
      ++outcome.rejected;
    }
  }
  outcome.end = service.drain();
  return outcome;
}

/// Prints the ServiceStats table shared by serve-sim and fleet-sim.
void print_service_stats(const wsim::serve::ServiceStats& stats,
                         const ReplayOutcome& outcome, double deadline_us) {
  wsim::util::Table table({"metric", "value"});
  table.add_row({"submitted", std::to_string(stats.submitted())});
  table.add_row({"completed", std::to_string(stats.completed())});
  table.add_row({"rejected (backpressure)", std::to_string(outcome.rejected)});
  table.add_row({"batches", std::to_string(stats.batch_sizes.batches)});
  table.add_row({"mean batch size", format_fixed(stats.batch_sizes.mean_size(), 2)});
  table.add_row({"batch-size histogram", stats.batch_sizes.format()});
  table.add_row({"latency p50", format_fixed(stats.latency.p50 * 1e3, 3) + " ms"});
  table.add_row({"latency p95", format_fixed(stats.latency.p95 * 1e3, 3) + " ms"});
  table.add_row({"latency p99", format_fixed(stats.latency.p99 * 1e3, 3) + " ms"});
  table.add_row({"latency mean", format_fixed(stats.latency.mean * 1e3, 3) + " ms"});
  table.add_row({"queue wait mean",
                 format_fixed(stats.queue_wait.mean * 1e3, 3) + " ms"});
  table.add_row({"throughput",
                 format_fixed(stats.throughput_tasks_per_second(), 0) + " tasks/s"});
  table.add_row({"GCUPS", format_fixed(stats.gcups(), 2)});
  table.add_row({"device utilization",
                 format_percent(stats.device_utilization())});
  if (deadline_us > 0.0) {
    table.add_row({"deadlines met", std::to_string(stats.deadlines_met) + " / " +
                   std::to_string(stats.deadlines_met + stats.deadlines_missed)});
  }
  table.add_row({"simulated end time", format_fixed(outcome.end * 1e3, 3) + " ms"});
  table.print(std::cout);
}

/// Dumps the stats to the --json path when given (serve::write_stats_json
/// schema, mirroring the bench sweeps' JSON field names).
void maybe_write_stats_json(const Args& args,
                            const wsim::serve::ServiceStats& stats) {
  const std::string path = args.get("json", "");
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  wsim::util::require(static_cast<bool>(os), "cannot open json file " + path);
  wsim::serve::write_stats_json(os, stats);
  os << '\n';
  std::cout << "stats written to " << path << "\n";
}

/// Fleet-backed variant: adds membership accounting and the "devices"
/// array, so fleet-sim --json and cluster-sim --json share one
/// device-record schema.
void maybe_write_stats_json(const Args& args,
                            const wsim::serve::ServiceStats& stats,
                            const wsim::fleet::FleetStats& fleet_stats) {
  const std::string path = args.get("json", "");
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  wsim::util::require(static_cast<bool>(os), "cannot open json file " + path);
  wsim::serve::write_stats_json(os, stats, fleet_stats);
  os << '\n';
  std::cout << "stats written to " << path << "\n";
}

int cmd_serve_sim(const Args& args) {
  namespace serve = wsim::serve;
  configure_obs(args);
  const auto ds = dataset_from(args, /*default_regions=*/8);
  const ReplaySetup setup = replay_setup_from(args);

  serve::ServiceConfig cfg;
  cfg.device = device_from(args);
  if (mode_from(args) == CommMode::kSharedMemory) {
    cfg.sw_design = CommMode::kSharedMemory;
    cfg.ph_design = wsim::kernels::PhDesign::kShared;
  }
  apply_service_args(args, setup, cfg);
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  cfg.engine = &engine;
  serve::AlignmentService service(std::move(cfg));

  const ReplayOutcome outcome = replay_poisson(
      service, ds, setup, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto stats = service.stats();

  std::cout << "Device: " << service.config().device.name << ", rate "
            << format_fixed(setup.rate, 0) << " req/s, batching delay "
            << format_fixed(setup.delay_us, 0) << " us"
            << (setup.deadline_us > 0.0
                    ? ", deadline " + format_fixed(setup.deadline_us, 0) + " us"
                    : std::string())
            << "\n";
  print_service_stats(stats, outcome, setup.deadline_us);
  maybe_write_stats_json(args, stats);
  write_obs_outputs(args);
  return 0;
}

/// Parses --fleet "K40,K1200,Titan X": comma-separated device names, each
/// one simulated worker. Kernel designs are chosen per device by the
/// performance model unless --mode pins them fleet-wide.
std::vector<wsim::fleet::WorkerConfig> workers_from(const Args& args,
                                                    const std::string& fallback) {
  std::vector<wsim::fleet::WorkerConfig> workers;
  const std::string fleet_names = args.get("fleet", fallback);
  std::size_t begin = 0;
  while (begin <= fleet_names.size()) {
    std::size_t end = fleet_names.find(',', begin);
    if (end == std::string::npos) {
      end = fleet_names.size();
    }
    const std::string name = fleet_names.substr(begin, end - begin);
    if (!name.empty()) {
      wsim::fleet::WorkerConfig wc;
      wc.device = wsim::simt::device_by_name(name);
      if (args.options.count("mode") != 0 &&
          mode_from(args) == CommMode::kSharedMemory) {
        wc.sw_design = CommMode::kSharedMemory;
        wc.ph_design = wsim::kernels::PhDesign::kShared;
      }
      workers.push_back(std::move(wc));
    }
    begin = end + 1;
  }
  wsim::util::require(!workers.empty(), "--fleet names no devices");
  return workers;
}

/// Parses --degrade "DEV@FACTOR[:KIND[:ONSET[:PARAM]]]" (comma-separated
/// for several injections): deterministic silent degradation of device
/// DEV by FACTOR in per-device dispatch-sequence space. KIND is stuck
/// (default), ramp (PARAM = dispatches to full factor), or flap (PARAM =
/// half-period in dispatches); ONSET is the first affected dispatch.
std::vector<wsim::fleet::DegradeSpec> degradations_from(const Args& args) {
  std::vector<wsim::fleet::DegradeSpec> specs;
  const std::string arg = args.get("degrade", "");
  std::size_t begin = 0;
  while (begin < arg.size()) {
    std::size_t end = arg.find(',', begin);
    if (end == std::string::npos) {
      end = arg.size();
    }
    const std::string item = arg.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) {
      continue;
    }
    const std::size_t at = item.find('@');
    wsim::util::require(at != std::string::npos && at > 0,
                        "--degrade expects DEV@FACTOR[:KIND[:ONSET[:PARAM]]], "
                        "got '" + item + "'");
    wsim::fleet::DegradeSpec spec;
    spec.device = static_cast<int>(std::stol(item.substr(0, at)));
    std::vector<std::string> fields;
    std::size_t f = at + 1;
    while (f <= item.size()) {
      std::size_t colon = item.find(':', f);
      if (colon == std::string::npos) {
        colon = item.size();
      }
      fields.push_back(item.substr(f, colon - f));
      f = colon + 1;
    }
    wsim::util::require(!fields.empty() && !fields[0].empty(),
                        "--degrade '" + item + "' names no factor");
    spec.factor = std::stod(fields[0]);
    wsim::util::require(spec.factor > 1.0,
                        "--degrade factor must be > 1 (a slowdown)");
    if (fields.size() > 1 && !fields[1].empty()) {
      const std::string& kind = fields[1];
      if (kind == "stuck") {
        spec.kind = wsim::fleet::DegradeKind::kStuckSlow;
      } else if (kind == "ramp") {
        spec.kind = wsim::fleet::DegradeKind::kProgressive;
      } else if (kind == "flap") {
        spec.kind = wsim::fleet::DegradeKind::kFlapping;
      } else {
        throw wsim::util::CheckError("unknown --degrade kind '" + kind +
                                     "' (stuck|ramp|flap)");
      }
    }
    if (fields.size() > 2 && !fields[2].empty()) {
      spec.onset_seq = static_cast<std::uint64_t>(std::stoul(fields[2]));
    }
    if (fields.size() > 3 && !fields[3].empty()) {
      const auto param = static_cast<std::uint64_t>(std::stoul(fields[3]));
      wsim::util::require(param >= 1, "--degrade PARAM must be >= 1");
      if (spec.kind == wsim::fleet::DegradeKind::kProgressive) {
        spec.ramp_batches = param;
      } else {
        spec.period = param;
      }
    }
    specs.push_back(spec);
  }
  return specs;
}

/// --calibrate on|off. Defaults to on under the calibrated placement
/// policy (which is built around the factors) and off otherwise.
bool calibration_from(const Args& args, wsim::fleet::PlacementPolicy policy) {
  const std::string fallback =
      policy == wsim::fleet::PlacementPolicy::kCalibrated ? "on" : "off";
  const std::string value = args.get("calibrate", fallback);
  wsim::util::require(value == "on" || value == "off",
                      "--calibrate must be 'on' or 'off'");
  return value == "on";
}

int cmd_fleet_sim(const Args& args) {
  namespace fleet = wsim::fleet;
  namespace serve = wsim::serve;
  configure_obs(args);
  const auto ds = dataset_from(args, /*default_regions=*/8);
  const ReplaySetup setup = replay_setup_from(args);

  fleet::FleetConfig fleet_cfg;
  fleet_cfg.workers = workers_from(args, "K40,K1200,Titan X");
  fleet_cfg.policy = fleet::placement_policy_by_name(args.get("policy", "model"));
  fleet_cfg.parallelism =
      fleet::parallelism_policy_by_name(args.get("parallelism", "auto"));
  // --kernel pins one SW subsystem fleet-wide: wf-* names force every SW
  // batch through that wavefront variant, plain names force task-per-block
  // with that communication design. Unknown names error listing the valid
  // vocabulary (sw_kernel_by_name).
  const std::string kernel = args.get("kernel", "");
  if (!kernel.empty()) {
    const wsim::kernels::SwKernelChoice choice =
        wsim::kernels::sw_kernel_by_name(kernel);
    if (choice.intra) {
      fleet_cfg.parallelism = fleet::ParallelismPolicy::kIntraTask;
      for (auto& wc : fleet_cfg.workers) {
        wc.wf_variant = choice.wf_variant;
      }
    } else {
      fleet_cfg.parallelism = fleet::ParallelismPolicy::kInterTask;
      for (auto& wc : fleet_cfg.workers) {
        wc.sw_design = choice.inter_mode;
      }
    }
  }
  fleet_cfg.faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  fleet_cfg.faults.launch_failure_prob = std::stod(args.get("fail-prob", "0"));
  fleet_cfg.faults.slowdown_prob = std::stod(args.get("slow-prob", "0"));
  fleet_cfg.faults.slowdown_factor = std::stod(args.get("slow-factor", "4"));
  fleet_cfg.faults.degradations = degradations_from(args);
  fleet_cfg.calibration.enabled = calibration_from(args, fleet_cfg.policy);
  wsim::simt::ExecutionEngine engine(engine_options_from(args));
  fleet_cfg.engine = &engine;
  fleet::FleetExecutor executor(std::move(fleet_cfg));

  serve::ServiceConfig cfg;
  apply_service_args(args, setup, cfg);
  cfg.fleet = &executor;
  serve::AlignmentService service(std::move(cfg));

  const ReplayOutcome outcome = replay_poisson(
      service, ds, setup, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto stats = service.stats();
  const auto fleet_stats = executor.stats();

  std::cout << "Fleet: " << executor.size() << " devices, policy "
            << fleet::to_string(executor.config().policy) << ", rate "
            << format_fixed(setup.rate, 0) << " req/s, batching delay "
            << format_fixed(setup.delay_us, 0) << " us"
            << (executor.config().faults.enabled()
                    ? ", faults on (seed " +
                          std::to_string(executor.config().faults.seed) + ")"
                    : std::string())
            << "\n";
  print_service_stats(stats, outcome, setup.deadline_us);

  const auto ph_design_name = [](wsim::kernels::PhDesign design) {
    switch (design) {
      case wsim::kernels::PhDesign::kShared:
        return "shared";
      case wsim::kernels::PhDesign::kShuffle:
        return "shuffle";
      case wsim::kernels::PhDesign::kHybrid:
        return "hybrid";
    }
    return "?";
  };
  const double duration = stats.duration_seconds();
  wsim::util::Table devices({"device", "SW", "WF", "PH", "batches", "intra",
                             "tasks", "cells", "busy (ms)", "util", "failures",
                             "slowdowns", "cal factor", "drift"});
  for (std::size_t i = 0; i < fleet_stats.devices.size(); ++i) {
    const auto& d = fleet_stats.devices[i];
    devices.add_row({d.name, std::string(wsim::kernels::to_string(d.sw_design)),
                     std::string(wsim::kernels::to_string(d.wf_variant)),
                     ph_design_name(d.ph_design), std::to_string(d.batches),
                     std::to_string(d.intra_batches), std::to_string(d.tasks),
                     std::to_string(d.cells),
                     format_fixed(d.busy_seconds * 1e3, 3),
                     format_percent(fleet_stats.utilization(i, duration)),
                     std::to_string(d.launch_failures),
                     std::to_string(d.slowdowns),
                     format_fixed(d.calibration_factor, 2),
                     std::string(fleet::to_string(d.drift_state))});
  }
  devices.print(std::cout);
  std::cout << "dispatches " << fleet_stats.dispatches << ", retries "
            << fleet_stats.retries << ", requeues " << fleet_stats.requeues
            << ", busy skew " << format_fixed(fleet_stats.busy_skew(), 3)
            << "\n";
  maybe_write_stats_json(args, stats, fleet_stats);
  write_obs_outputs(args);
  return 0;
}

/// Builds the trace cluster-sim replays: loaded from --trace when given,
/// otherwise generated from --shape/--duration/--rate/--tenants/--seed
/// (the total rate splits evenly across tenants). --save-trace saves the
/// trace either way, so a generated run can be replayed bit-identically.
wsim::workload::Trace cluster_trace_from(const Args& args) {
  namespace workload = wsim::workload;
  workload::Trace trace;
  const std::string trace_in = args.get("trace", "");
  if (!trace_in.empty()) {
    trace = workload::load_trace(trace_in);
  } else {
    workload::TraceConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    cfg.duration_seconds = std::stod(args.get("duration", "0.5"));
    wsim::util::require(cfg.duration_seconds > 0.0, "--duration must be > 0");
    cfg.shape = workload::trace_shape_by_name(args.get("shape", "diurnal"));
    const long tenants = args.get_int("tenants", 2);
    wsim::util::require(tenants >= 1, "--tenants must be >= 1");
    const double rate = std::stod(args.get("rate", "20000"));
    wsim::util::require(rate > 0.0, "--rate must be > 0");
    for (long i = 0; i < tenants; ++i) {
      workload::TenantTraffic traffic;
      traffic.name = "tenant-" + std::to_string(i);
      traffic.rate_hz = rate / static_cast<double>(tenants);
      cfg.tenants.push_back(std::move(traffic));
    }
    trace = workload::generate_trace(cfg);
  }
  const std::string trace_out = args.get("save-trace", "");
  if (!trace_out.empty()) {
    workload::save_trace(trace_out, trace);
    std::cout << "trace written to " << trace_out << " (" << trace.events.size()
              << " events)\n";
  }
  return trace;
}

int cmd_cluster_sim(const Args& args) {
  namespace cluster = wsim::cluster;
  namespace fleet = wsim::fleet;
  namespace serve = wsim::serve;
  configure_obs(args);
  const auto ds = dataset_from(args, /*default_regions=*/4);
  const wsim::workload::Trace trace = cluster_trace_from(args);

  cluster::ClusterConfig cfg;
  cfg.worker.device =
      wsim::simt::device_by_name(args.get("fleet-device", "K1200"));
  if (args.options.count("mode") != 0 &&
      mode_from(args) == CommMode::kSharedMemory) {
    cfg.worker.sw_design = CommMode::kSharedMemory;
    cfg.worker.ph_design = wsim::kernels::PhDesign::kShared;
  }
  cfg.autoscaler.min_workers =
      static_cast<std::size_t>(args.get_int("min", 1));
  cfg.autoscaler.max_workers =
      static_cast<std::size_t>(args.get_int("max", 8));
  const std::string autoscale = args.get("autoscaler", "on");
  wsim::util::require(autoscale == "on" || autoscale == "off",
                      "--autoscaler must be 'on' or 'off'");
  cfg.autoscaler.enabled = autoscale == "on";
  // With the control law off the fleet is fixed: min workers for the whole
  // run (pass --min = --max to size the fixed fleet).
  cfg.initial_workers = cfg.autoscaler.min_workers;
  cfg.control_interval_seconds =
      static_cast<double>(args.get_int("interval", 2000)) * 1e-6;
  cfg.join_warmup_seconds =
      static_cast<double>(args.get_int("warmup", 2000)) * 1e-6;
  cfg.autoscaler.target_backlog_seconds =
      static_cast<double>(args.get_int("target-backlog", 5000)) * 1e-6;
  cfg.cost_per_device_hour = std::stod(args.get("cost-hour", "2.5"));
  cfg.faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  cfg.faults.launch_failure_prob = std::stod(args.get("fail-prob", "0"));
  cfg.faults.slowdown_prob = std::stod(args.get("slow-prob", "0"));
  cfg.faults.slowdown_factor = std::stod(args.get("slow-factor", "4"));
  cfg.faults.degradations = degradations_from(args);
  cfg.policy = fleet::placement_policy_by_name(args.get("policy", "model"));
  cfg.calibration.enabled = calibration_from(args, cfg.policy);

  // Every trace tenant gets the same contract: an SLO class (--slo, in
  // milliseconds, 0 = none) and a queued-task quota (--quota, 0 = none).
  const double slo_seconds = std::stod(args.get("slo", "20")) * 1e-3;
  const std::size_t quota =
      static_cast<std::size_t>(args.get_int("quota", 0));
  for (const std::string& name : trace.tenants) {
    serve::TenantConfig tenant;
    tenant.name = name;
    tenant.slo_seconds = slo_seconds;
    tenant.max_queued_tasks = quota;
    cfg.tenants.push_back(std::move(tenant));
  }

  const cluster::ClusterReport report = cluster::run_cluster(ds, trace, cfg);

  std::cout << "Cluster: " << cfg.worker.device.name << " x [";
  std::cout << cfg.autoscaler.min_workers << ".." << cfg.autoscaler.max_workers
            << "], autoscaler " << (cfg.autoscaler.enabled ? "on" : "off")
            << ", " << trace.tenants.size() << " tenants, "
            << trace.events.size() << " arrivals over "
            << format_fixed(trace.duration_seconds * 1e3, 0) << " ms\n";
  wsim::util::Table table({"metric", "value"});
  table.add_row({"completed", std::to_string(report.service.completed()) +
                 " / " + std::to_string(report.service.submitted())});
  table.add_row({"rejected (tenant quota)",
                 std::to_string(report.service.rejected_tenant_quota)});
  table.add_row({"goodput", format_fixed(report.goodput_rps, 0) + " req/s"});
  table.add_row({"SLO violation rate",
                 format_percent(report.slo_violation_rate)});
  table.add_row({"latency p50",
                 format_fixed(report.service.latency.p50 * 1e3, 3) + " ms"});
  table.add_row({"latency p99",
                 format_fixed(report.service.latency.p99 * 1e3, 3) + " ms"});
  table.add_row({"peak workers", std::to_string(report.peak_workers)});
  table.add_row({"joins / drains / retires",
                 std::to_string(report.fleet.joins) + " / " +
                     std::to_string(report.fleet.drains) + " / " +
                     std::to_string(report.fleet.retires)});
  table.add_row({"device-hours", format_fixed(report.device_hours * 3600.0, 3) +
                 " device-s"});
  table.add_row({"cost / 1M requests",
                 format_fixed(report.cost_per_million, 4) + " $"});
  table.add_row({"simulated end time",
                 format_fixed(report.duration_seconds * 1e3, 3) + " ms"});
  table.print(std::cout);

  wsim::util::Table tenants_table({"tenant", "submitted", "completed",
                                   "quota-rejected", "SLO (ms)", "p50 (ms)",
                                   "p99 (ms)", "violations"});
  for (const serve::TenantStats& tenant : report.service.tenants) {
    tenants_table.add_row(
        {tenant.name.empty() ? "(default)" : tenant.name,
         std::to_string(tenant.submitted), std::to_string(tenant.completed),
         std::to_string(tenant.rejected_quota),
         format_fixed(tenant.slo_seconds * 1e3, 1),
         format_fixed(tenant.latency.p50 * 1e3, 3),
         format_fixed(tenant.latency.p99 * 1e3, 3),
         format_percent(tenant.slo_violation_rate())});
  }
  tenants_table.print(std::cout);

  wsim::util::Table devices({"id", "device", "state", "batches", "cells",
                             "busy (ms)", "quarantines", "cal factor", "drift",
                             "joined (ms)"});
  for (const fleet::DeviceStats& d : report.fleet.devices) {
    devices.add_row({std::to_string(d.id), d.name,
                     std::string(fleet::to_string(d.state)),
                     std::to_string(d.batches), std::to_string(d.cells),
                     format_fixed(d.busy_seconds * 1e3, 3),
                     std::to_string(d.quarantines),
                     format_fixed(d.calibration_factor, 2),
                     std::string(fleet::to_string(d.drift_state)),
                     format_fixed(d.joined_at * 1e3, 3)});
  }
  devices.print(std::cout);

  const std::string path = args.get("json", "");
  if (!path.empty()) {
    std::ofstream os(path);
    wsim::util::require(static_cast<bool>(os), "cannot open json file " + path);
    cluster::write_cluster_json(os, report);
    os << '\n';
    std::cout << "report written to " << path << "\n";
  }
  write_obs_outputs(args);
  return 0;
}

/// One cell of the guard-sim sweep: an injection rate crossed with a
/// detection mode, plus what the fleet's guard accounting and the
/// bit-identity comparison against the fault-free baseline observed.
struct GuardCell {
  double flip_prob = 0.0;
  wsim::guard::DetectMode mode = wsim::guard::DetectMode::kNone;
  std::size_t batches = 0;
  std::size_t escaped = 0;       ///< delivered batches differing from baseline
  std::size_t cpu_excluded = 0;  ///< PairHMM CPU fallbacks (accurate, not bit-identical)
  wsim::guard::GuardStats stats;
};

int cmd_guard_sim(const Args& args) {
  namespace fleet = wsim::fleet;
  namespace guard = wsim::guard;
  configure_obs(args);
  const auto ds = dataset_from(args, /*default_regions=*/2);
  const auto batch_size = static_cast<std::size_t>(args.get_int("batch", 64));
  const auto sw_batches = wsim::workload::sw_rebatch(ds, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(ds, batch_size);

  std::vector<double> probs;
  {
    const std::string list = args.get("flip-prob", "3e-7,3e-6");
    std::size_t begin = 0;
    while (begin <= list.size()) {
      std::size_t end = list.find(',', begin);
      if (end == std::string::npos) {
        end = list.size();
      }
      const std::string item = list.substr(begin, end - begin);
      if (!item.empty()) {
        probs.push_back(std::stod(item));
      }
      begin = end + 1;
    }
    wsim::util::require(!probs.empty(), "guard-sim: --flip-prob names no rates");
  }
  std::vector<guard::DetectMode> modes;
  {
    const std::string detect = args.get("detect", "all");
    if (detect == "all") {
      modes = {guard::DetectMode::kNone, guard::DetectMode::kAbft,
               guard::DetectMode::kDual};
    } else {
      modes = {guard::detect_mode_by_name(detect)};
    }
  }
  const auto workers = workers_from(args, "K1200,Titan X");
  const auto sdc_seed = static_cast<std::uint64_t>(args.get_int("sdc-seed", 7));
  wsim::simt::ExecutionEngine engine(engine_options_from(args));

  // Runs every batch through `executor` and either records the delivered
  // fingerprints (baseline pass) or compares them against the baseline's
  // (sweep pass). The comparison is end-to-end bit-identity of everything
  // the fleet delivers, so it also penalizes corruption the ABFT
  // validators cannot see (e.g. traceback cells off the reported path).
  const auto run_all = [&](fleet::FleetExecutor& executor,
                           std::vector<std::uint64_t>* record,
                           const std::vector<std::uint64_t>* baseline,
                           GuardCell* cell) {
    fleet::ExecOptions opt;  // collect_outputs defaults to true
    std::size_t index = 0;
    const auto observe = [&](std::uint64_t print, bool cpu_fallback, bool is_sw) {
      if (record != nullptr) {
        record->push_back(print);
      }
      if (baseline != nullptr) {
        // The SW CPU reference is bit-identical to the kernels, so its
        // fallbacks still must match; the PairHMM one is accurate but
        // differs in low bits from the f32 kernel and is excluded.
        if (!is_sw && cpu_fallback) {
          ++cell->cpu_excluded;
        } else if (print != (*baseline)[index]) {
          ++cell->escaped;
        }
      }
      ++index;
    };
    for (const auto& batch : sw_batches) {
      auto executed = executor.execute_sw(batch, /*now=*/0.0, opt);
      observe(guard::fingerprint_sw(executed.result.outputs),
              executed.exec.cpu_fallback, /*is_sw=*/true);
    }
    for (const auto& batch : ph_batches) {
      auto executed = executor.execute_ph(batch, /*now=*/0.0, opt);
      observe(guard::fingerprint_ph(executed.result.log10),
              executed.exec.cpu_fallback, /*is_sw=*/false);
    }
  };

  std::vector<std::uint64_t> baseline;
  {
    fleet::FleetConfig cfg;
    cfg.workers = workers;
    cfg.engine = &engine;
    fleet::FleetExecutor executor(std::move(cfg));
    run_all(executor, &baseline, nullptr, nullptr);
  }

  std::vector<GuardCell> cells;
  for (const double prob : probs) {
    for (const guard::DetectMode mode : modes) {
      fleet::FleetConfig cfg;
      cfg.workers = workers;
      cfg.engine = &engine;
      cfg.guard.detect = mode;
      cfg.guard.sdc.seed = sdc_seed;
      cfg.guard.sdc.flip_prob = prob;
      fleet::FleetExecutor executor(std::move(cfg));
      GuardCell cell;
      cell.flip_prob = prob;
      cell.mode = mode;
      cell.batches = sw_batches.size() + ph_batches.size();
      run_all(executor, nullptr, &baseline, &cell);
      cell.stats = executor.stats().guard;
      cells.push_back(std::move(cell));
    }
  }

  std::size_t escaped_total = 0;
  wsim::util::Table table({"flip prob", "detect", "batches", "flips", "detected",
                           "corrected", "masked", "re-exec", "cpu", "escaped"});
  for (const GuardCell& cell : cells) {
    escaped_total += cell.escaped;
    table.add_row({format_fixed(cell.flip_prob, 7),
                   std::string(guard::to_string(cell.mode)),
                   std::to_string(cell.batches),
                   std::to_string(cell.stats.sdc_flips),
                   std::to_string(cell.stats.sdc_detected),
                   std::to_string(cell.stats.sdc_corrected),
                   std::to_string(cell.stats.sdc_masked),
                   std::to_string(cell.stats.reexecutions),
                   std::to_string(cell.stats.cpu_fallbacks),
                   std::to_string(cell.escaped)});
  }
  std::cout << "Fleet: " << workers.size() << " devices, "
            << sw_batches.size() + ph_batches.size() << " batches (SW "
            << sw_batches.size() << ", PairHMM " << ph_batches.size()
            << "), SDC seed " << sdc_seed << "\n";
  table.print(std::cout);
  std::cout << "escaped_total " << escaped_total << "\n";

  const std::string path = args.get("json", "");
  if (!path.empty()) {
    std::ofstream os(path);
    wsim::util::require(static_cast<bool>(os), "cannot open json file " + path);
    os << "{\n  \"sweep\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const GuardCell& cell = cells[i];
      os << (i == 0 ? "" : ",") << "\n    {\"flip_prob\": " << cell.flip_prob
         << ", \"detect\": \"" << guard::to_string(cell.mode) << "\""
         << ", \"batches\": " << cell.batches
         << ", \"sdc_flips\": " << cell.stats.sdc_flips
         << ", \"sdc_detected\": " << cell.stats.sdc_detected
         << ", \"sdc_corrected\": " << cell.stats.sdc_corrected
         << ", \"sdc_masked\": " << cell.stats.sdc_masked
         << ", \"reexecutions\": " << cell.stats.reexecutions
         << ", \"cpu_fallbacks\": " << cell.stats.cpu_fallbacks
         << ", \"watchdog_timeouts\": " << cell.stats.watchdog_timeouts
         << ", \"escaped\": " << cell.escaped << "}";
    }
    os << "\n  ],\n  \"escaped_total\": " << escaped_total << "\n}\n";
    std::cout << "sweep written to " << path << "\n";
  }
  write_obs_outputs(args);
  return 0;
}

void print_usage(std::ostream& os) { os << wsim::cli::usage_text(); }

int usage_error() {
  print_usage(std::cerr);
  return 2;
}

}  // namespace

namespace {

using Handler = int (*)(const Args&);

/// Dispatch table, checked one-to-one against wsim::cli::commands() at
/// startup so the registry (and therefore the help text and the drift
/// test) can never silently diverge from what main() actually runs.
const std::map<std::string, Handler>& handlers() {
  static const std::map<std::string, Handler> table = {
      {"devices", [](const Args&) { return cmd_devices(); }},
      {"micro", cmd_micro},
      {"sw", cmd_sw},
      {"nw", cmd_nw},
      {"pairhmm", cmd_pairhmm},
      {"sw-run", cmd_sw_run},
      {"workload", cmd_workload},
      {"sweep", cmd_sweep},
      {"pipeline", cmd_pipeline},
      {"serve-sim", cmd_serve_sim},
      {"fleet-sim", cmd_fleet_sim},
      {"cluster-sim", cmd_cluster_sim},
      {"guard-sim", cmd_guard_sim},
  };
  return table;
}

void check_registry() {
  const auto& table = handlers();
  for (const auto& info : wsim::cli::commands()) {
    wsim::util::require(table.count(std::string(info.name)) == 1,
                        "wsim: registered command '" + std::string(info.name) +
                            "' has no dispatch handler");
  }
  wsim::util::require(table.size() == wsim::cli::commands().size(),
                      "wsim: dispatch table has commands missing from the "
                      "wsim::cli registry");
}

}  // namespace

int main(int argc, char** argv) {
  check_registry();
  if (argc < 2) {
    return usage_error();
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  const Args args = parse(argc, argv);
  // The interpreter knob routes through the WSIM_INTERP environment
  // variable so every launch in the process — including engines built by
  // library code — resolves the same path (simt::resolve_interp_path).
  const std::string interp = args.get("interp", "");
  if (!interp.empty()) {
    const std::string interp_err = wsim::cli::interp_error(interp);
    if (!interp_err.empty()) {
      std::cerr << interp_err << '\n';
      return usage_error();
    }
    ::setenv("WSIM_INTERP", interp.c_str(), 1);
  }
  try {
    const auto it = handlers().find(command);
    if (it == handlers().end()) {
      std::cerr << "unknown command '" << command << "'\n";
      return usage_error();
    }
    return it->second(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
