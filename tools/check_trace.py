#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by `wsim ... --trace-out`.

Checks the invariants the obs exporter guarantees:
  * the file is well-formed JSON (a trace-event array);
  * every event carries ph/pid/tid, and non-metadata events carry ts;
  * per (pid, tid) track, timestamps are non-decreasing in file order;
  * B/E span events balance as a stack per track (strict nesting);
  * every track named by --require-track exists (via thread_name metadata).

Exit status 0 when all checks pass, 1 otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace-event JSON file")
    parser.add_argument(
        "--require-track",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a track with this thread_name exists (repeatable)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of non-metadata events (default 1)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {args.trace}: {e}")
    if not isinstance(events, list):
        return fail("top-level JSON value must be a trace-event array")

    track_names = {}  # (pid, tid) -> thread_name
    last_ts = {}  # (pid, tid) -> last seen ts
    span_stack = {}  # (pid, tid) -> [open span names]
    counted = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"event {i} is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                return fail(f"event {i} is missing '{key}': {event}")
        ph = event["ph"]
        track = (event["pid"], event["tid"])
        if ph == "M":
            if event.get("name") == "thread_name":
                track_names[track] = event["args"]["name"]
            continue
        counted += 1
        if "ts" not in event:
            return fail(f"event {i} ({ph}) is missing 'ts'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            return fail(f"event {i} has a non-numeric ts: {ts!r}")
        if track in last_ts and ts < last_ts[track]:
            return fail(
                f"event {i}: ts {ts} goes backwards on track {track} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "B":
            span_stack.setdefault(track, []).append(event.get("name", ""))
        elif ph == "E":
            stack = span_stack.get(track, [])
            if not stack:
                return fail(f"event {i}: span end with no open span on {track}")
            opened = stack.pop()
            name = event.get("name", "")
            if name and opened and name != opened:
                return fail(
                    f"event {i}: span end '{name}' does not match open "
                    f"span '{opened}' on {track} — spans must nest"
                )
        elif ph not in ("i", "I", "C"):
            return fail(f"event {i}: unexpected phase '{ph}'")

    for track, stack in span_stack.items():
        if stack:
            return fail(f"track {track} ends with unclosed spans: {stack}")
    if counted < args.min_events:
        return fail(f"only {counted} events (< --min-events {args.min_events})")

    names = set(track_names.values())
    for required in args.require_track:
        if required not in names:
            return fail(
                f"required track '{required}' not found "
                f"(tracks: {sorted(names)})"
            )

    print(
        f"check_trace: OK: {counted} events on {len(last_ts)} tracks "
        f"({', '.join(sorted(names))})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
